//! A zoo of realistic trace scenarios for trace-file tooling and
//! benchmarks.
//!
//! The synthetic generators in [`crate::synthetic`] draw i.i.d. random
//! intervals; real power traces have structure — bursts, frame locks,
//! thermal sawtooths (§7 of the paper; PAPERS.md arXiv:2605.17182).
//! Each [`ZooScenario`] synthesises one such structure deterministically
//! from a seed, so the trace-file converters, the streaming-replay
//! bench, and the chaos campaign all exercise realistically-shaped
//! inputs without shipping proprietary traces.

use crate::trace::{Trace, TraceInterval, WorkloadType};
use pdn_proc::PackageCState;
use pdn_units::{ApplicationRatio, Seconds};

/// SplitMix64 — the same tiny deterministic generator the fault plans
/// and chaos scripts use; good enough statistical quality for workload
/// shaping and completely reproducible.
#[derive(Debug, Clone)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

fn ar(v: f64) -> ApplicationRatio {
    // The zoo generators keep their draws inside (0, 1]; clamp guards
    // the boundary against floating-point dust.
    ApplicationRatio::new(v.clamp(1e-6, 1.0)).expect("clamped AR is valid")
}

/// The trace-shape scenarios shipped with the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ZooScenario {
    /// Server-style alternation of multi-thread bursts and deep-idle
    /// valleys (request batches against C6/C8 quiet periods).
    ServerBurstIdle,
    /// Gaming at a locked frame cadence: a graphics slice of most of
    /// each 16.7 ms frame, the remainder in shallow idle.
    GamingFrameLocked,
    /// ML inference serving: long steady multi-thread compute at high
    /// AR with short C2 gaps between batches.
    MlInference,
    /// Thermally-throttled mobile: an AR sawtooth decaying from 0.9 to
    /// 0.45 as the device heats, then a C8 cool-off, repeating.
    MobileThrottled,
}

impl ZooScenario {
    /// Every scenario, in declaration order.
    pub const ALL: [ZooScenario; 4] = [
        ZooScenario::ServerBurstIdle,
        ZooScenario::GamingFrameLocked,
        ZooScenario::MlInference,
        ZooScenario::MobileThrottled,
    ];

    /// Stable snake_case scenario name.
    pub fn name(self) -> &'static str {
        match self {
            ZooScenario::ServerBurstIdle => "server_burst_idle",
            ZooScenario::GamingFrameLocked => "gaming_frame_locked",
            ZooScenario::MlInference => "ml_inference",
            ZooScenario::MobileThrottled => "mobile_throttled",
        }
    }

    /// Generates `intervals` intervals of this scenario from `seed`.
    /// Deterministic: the same `(seed, intervals)` always yields the
    /// same trace, bit for bit.
    pub fn generate(self, seed: u64, intervals: usize) -> Trace {
        // Offset the stream per scenario so a mix built from one seed
        // does not reuse draws across scenarios.
        let mut rng = SplitMix::new(seed ^ (0x5EED_0000 + self as u64));
        let mut out = Vec::with_capacity(intervals);
        match self {
            ZooScenario::ServerBurstIdle => {
                while out.len() < intervals {
                    // A burst of request-batch intervals...
                    let burst = 2 + (rng.next_u64() % 6) as usize;
                    for _ in 0..burst.min(intervals - out.len()) {
                        out.push(TraceInterval::active(
                            Seconds::from_millis(rng.range(0.5, 4.0)),
                            WorkloadType::MultiThread,
                            ar(rng.range(0.70, 0.95)),
                        ));
                    }
                    if out.len() >= intervals {
                        break;
                    }
                    // ...then a deep-idle valley.
                    let state =
                        if rng.next_f64() < 0.5 { PackageCState::C6 } else { PackageCState::C8 };
                    out.push(TraceInterval::idle(
                        Seconds::from_millis(rng.range(2.0, 20.0)),
                        state,
                    ));
                }
            }
            ZooScenario::GamingFrameLocked => {
                const FRAME_MS: f64 = 16.7;
                while out.len() < intervals {
                    let render_ms = rng.range(8.0, 14.0);
                    out.push(TraceInterval::active(
                        Seconds::from_millis(render_ms),
                        WorkloadType::Graphics,
                        ar(rng.range(0.65, 0.90)),
                    ));
                    if out.len() >= intervals {
                        break;
                    }
                    let state =
                        if rng.next_f64() < 0.3 { PackageCState::C0Min } else { PackageCState::C2 };
                    out.push(TraceInterval::idle(
                        Seconds::from_millis(FRAME_MS - render_ms),
                        state,
                    ));
                }
            }
            ZooScenario::MlInference => {
                while out.len() < intervals {
                    // A serving batch: steady high-AR compute.
                    let batch = 4 + (rng.next_u64() % 8) as usize;
                    for _ in 0..batch.min(intervals - out.len()) {
                        out.push(TraceInterval::active(
                            Seconds::from_millis(rng.range(2.0, 6.0)),
                            WorkloadType::MultiThread,
                            ar(rng.range(0.80, 0.95)),
                        ));
                    }
                    if out.len() >= intervals {
                        break;
                    }
                    // Short shallow gap while the next batch queues.
                    out.push(TraceInterval::idle(
                        Seconds::from_millis(rng.range(0.3, 1.5)),
                        PackageCState::C2,
                    ));
                }
            }
            ZooScenario::MobileThrottled => {
                while out.len() < intervals {
                    // Thermal sawtooth: AR decays as the device heats.
                    let steps = 6 + (rng.next_u64() % 6) as usize;
                    for step in 0..steps.min(intervals - out.len()) {
                        let progress = step as f64 / steps as f64;
                        let peak = 0.90 - 0.45 * progress;
                        out.push(TraceInterval::active(
                            Seconds::from_millis(rng.range(3.0, 8.0)),
                            WorkloadType::SingleThread,
                            ar(peak - rng.range(0.0, 0.05)),
                        ));
                    }
                    if out.len() >= intervals {
                        break;
                    }
                    // Cool-off in deep idle before the next ramp.
                    out.push(TraceInterval::idle(
                        Seconds::from_millis(rng.range(10.0, 40.0)),
                        PackageCState::C8,
                    ));
                }
            }
        }
        out.truncate(intervals);
        Trace::new(self.name(), out)
    }
}

/// Concatenates every zoo scenario (in [`ZooScenario::ALL`] order) into
/// one mixed trace of `4 * intervals_per_scenario` intervals — the
/// standard input for the trace-file bench and the CI trace-smoke job.
pub fn zoo_mix(seed: u64, intervals_per_scenario: usize) -> Trace {
    let mut mix = Trace::new("zoo_mix", Vec::new());
    for scenario in ZooScenario::ALL {
        mix.extend(&scenario.generate(seed, intervals_per_scenario));
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Phase;

    #[test]
    fn scenarios_are_deterministic() {
        for s in ZooScenario::ALL {
            let a = s.generate(7, 300);
            let b = s.generate(7, 300);
            assert_eq!(a, b, "{} must be deterministic", s.name());
            let c = s.generate(8, 300);
            assert_ne!(a, c, "{} must vary with the seed", s.name());
        }
    }

    #[test]
    fn scenarios_hit_the_requested_length_and_validate() {
        for s in ZooScenario::ALL {
            for n in [0, 1, 17, 256] {
                let t = s.generate(3, n);
                assert_eq!(t.intervals().len(), n, "{}", s.name());
                for i in t.intervals() {
                    i.validate().expect("zoo intervals are always valid");
                }
            }
        }
    }

    #[test]
    fn scenarios_have_their_signature_shapes() {
        let server = ZooScenario::ServerBurstIdle.generate(1, 400);
        assert_eq!(server.dominant_type(), Some(WorkloadType::MultiThread));
        assert!(server.intervals().iter().any(|i| i.phase == Phase::Idle(PackageCState::C8)
            || i.phase == Phase::Idle(PackageCState::C6)));

        let gaming = ZooScenario::GamingFrameLocked.generate(1, 400);
        assert_eq!(gaming.dominant_type(), Some(WorkloadType::Graphics));

        let ml = ZooScenario::MlInference.generate(1, 400);
        assert!(ml.mean_active_ar().unwrap().get() > 0.8, "inference runs hot");
        assert!(ml.active_residency().get() > 0.8, "inference is mostly active");

        let mobile = ZooScenario::MobileThrottled.generate(1, 400);
        let mean = mobile.mean_active_ar().unwrap().get();
        assert!(mean > 0.5 && mean < 0.9, "throttling pulls the mean AR down: {mean}");
    }

    #[test]
    fn zoo_mix_concatenates_all_scenarios() {
        let mix = zoo_mix(11, 50);
        assert_eq!(mix.intervals().len(), 200);
        assert_eq!(mix.name(), "zoo_mix");
        // Both active and idle phases appear.
        assert!(mix.intervals().iter().any(|i| i.phase.is_active()));
        assert!(mix.intervals().iter().any(|i| !i.phase.is_active()));
    }
}
