//! Crash-tolerant chunked binary power-trace files.
//!
//! Real-scale power traces (§7 of the paper; PAPERS.md arXiv:2605.17182)
//! run to millions of intervals and are produced by flaky external
//! toolchains, so this format is built to be decoded defensively: a
//! trace file is a CRC-trailed header followed by fixed-capacity chunk
//! frames of SoA interval columns, each frame CRC-32-trailed and
//! independently decodable, closed by a footer that declares the total
//! interval count. A damaged chunk never takes down the file — the
//! [`TraceReader`] classifies every problem into a closed
//! [`ChunkDefect`] taxonomy and, under [`DefectPolicy::Quarantine`],
//! skips the damaged frame, resynchronises on the next frame magic, and
//! accounts the skipped intervals; under [`DefectPolicy::Strict`] the
//! first defect is fatal.
//!
//! ## On-disk layout (all integers little-endian)
//!
//! ```text
//! header  := "PDNT" u16 version  u16 flags  u32 chunk_capacity
//!            u32 name_len  name_bytes  u32 crc32(header bytes so far)
//! chunk   := "CHNK" u32 payload_len  payload  u32 crc32(payload)
//! payload := u64 first_index  u32 count
//!            u64 duration_bits × count   (f64 bit patterns, SoA)
//!            u8  phase_tag     × count
//!            u64 ar_bits       × count   (f64 bit patterns)
//! footer  := "TEND" u32 payload_len(16)
//!            u64 total_intervals  u64 total_duration_bits  u32 crc32
//! ```
//!
//! Durations and application ratios are stored as raw `f64` bit
//! patterns, so encode → decode round-trips are bit-exact. Phase tags
//! pack the discriminant into one byte (`0x00..=0x05` = idle C-state in
//! [`PackageCState::ALL`] order, `0x10..=0x13` = active workload type).
//! Chunks carry their absolute first interval index so a reader that
//! quarantined a frame can tell exactly how many intervals went missing
//! ([`ChunkDefect::IndexGap`]).

use crate::trace::{Phase, Trace, TraceInterval, WorkloadType};
use pdn_proc::PackageCState;
use pdn_units::{ApplicationRatio, Seconds, UnitsError};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: `"PDNT"` interpreted as a little-endian `u32`.
pub const FILE_MAGIC: u32 = u32::from_le_bytes(*b"PDNT");
/// Chunk-frame magic: `"CHNK"`.
pub const CHUNK_MAGIC: u32 = u32::from_le_bytes(*b"CHNK");
/// Footer magic: `"TEND"`.
pub const FOOTER_MAGIC: u32 = u32::from_le_bytes(*b"TEND");
/// Current format version.
pub const VERSION: u16 = 1;
/// Bytes per interval inside a chunk payload (u64 duration bits +
/// u8 phase tag + u64 AR bits).
pub const BYTES_PER_INTERVAL: usize = 17;
/// Default chunk capacity in intervals (~68 KiB payloads).
pub const DEFAULT_CHUNK_INTERVALS: usize = 4096;
/// Hard upper bound on the per-chunk interval count; payloads that
/// declare more are [`ChunkDefect::Oversized`]. Bounds reader memory at
/// ~1.1 MiB regardless of what the file claims.
pub const MAX_CHUNK_INTERVALS: usize = 1 << 16;
/// Longest permitted trace name in the header.
pub const MAX_NAME: usize = 4096;

/// Fixed payload prefix: `first_index` (u64) + `count` (u32).
const CHUNK_PREFIX: usize = 12;
/// Largest payload length a well-formed chunk can declare.
const MAX_PAYLOAD: usize = CHUNK_PREFIX + MAX_CHUNK_INTERVALS * BYTES_PER_INTERVAL;
/// Frame prefix: magic (u32) + payload length (u32).
const FRAME_PREFIX: usize = 8;
/// Footer payload: total_intervals (u64) + total_duration_bits (u64).
const FOOTER_PAYLOAD: usize = 16;
/// Read granularity for the streaming reader.
const READ_CHUNK: usize = 64 * 1024;

/// CRC-32 (IEEE, reflected) — the same polynomial the firmware image
/// trailer and the wire protocol use.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// 64-bit FNV-1a over `data` — used to fingerprint a trace file's header
/// so replay checkpoints can refuse to resume against a different file.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Defect taxonomy
// ---------------------------------------------------------------------------

/// Everything that can be wrong with a chunk frame (or the stream
/// structure around it). A closed taxonomy, like `FaultCampaignReport`:
/// every decode failure maps to exactly one variant, so a quarantining
/// replay can report exact per-kind counts.
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkDefect {
    /// The stream ended in the middle of a frame.
    Truncated {
        /// Byte offset where the incomplete frame starts.
        at: u64,
    },
    /// Four bytes where a frame magic should be are neither `CHNK` nor
    /// `TEND`.
    BadMagic {
        /// Byte offset of the bad magic.
        at: u64,
        /// The four bytes found, as a little-endian `u32`.
        found: u32,
    },
    /// A chunk declared a payload longer than [`MAX_CHUNK_INTERVALS`]
    /// intervals can occupy.
    Oversized {
        /// Byte offset of the frame.
        at: u64,
        /// The declared payload length.
        declared: u64,
    },
    /// The payload CRC-32 trailer does not match the payload.
    ChecksumMismatch {
        /// Byte offset of the frame.
        at: u64,
        /// CRC the trailer declares.
        expected: u32,
        /// CRC computed over the payload bytes.
        found: u32,
    },
    /// The payload passed its CRC but its internal structure is wrong
    /// (length/count mismatch, unknown phase tag, bad footer shape).
    Malformed {
        /// Byte offset of the frame.
        at: u64,
        /// What was wrong.
        what: &'static str,
    },
    /// A decoded interval fails [`TraceInterval::validate`] — e.g. a NaN
    /// duration or an out-of-range application ratio smuggled in via raw
    /// bits.
    InvalidInterval {
        /// Byte offset of the frame containing the interval.
        at: u64,
        /// The violated invariant.
        source: UnitsError,
    },
    /// A good chunk's `first_index` is not the next expected interval —
    /// the quarantined frames in between lost `found - expected`
    /// intervals.
    IndexGap {
        /// The interval index the reader expected next.
        expected: u64,
        /// The index the chunk actually starts at.
        found: u64,
    },
    /// The stream ended at a clean frame boundary without a footer
    /// (e.g. the writer crashed before `finish`).
    MissingFooter,
    /// The footer's declared total does not match the intervals the
    /// reader emitted plus the intervals it knows it lost.
    FooterMismatch {
        /// Total intervals the footer declares.
        declared: u64,
        /// Intervals actually emitted by this reader.
        replayed: u64,
    },
}

impl ChunkDefect {
    /// The taxonomy bucket this defect belongs to.
    pub fn kind(&self) -> DefectKind {
        match self {
            ChunkDefect::Truncated { .. } => DefectKind::Truncated,
            ChunkDefect::BadMagic { .. } => DefectKind::BadMagic,
            ChunkDefect::Oversized { .. } => DefectKind::Oversized,
            ChunkDefect::ChecksumMismatch { .. } => DefectKind::ChecksumMismatch,
            ChunkDefect::Malformed { .. } => DefectKind::Malformed,
            ChunkDefect::InvalidInterval { .. } => DefectKind::InvalidInterval,
            ChunkDefect::IndexGap { .. } => DefectKind::IndexGap,
            ChunkDefect::MissingFooter => DefectKind::MissingFooter,
            ChunkDefect::FooterMismatch { .. } => DefectKind::FooterMismatch,
        }
    }
}

impl fmt::Display for ChunkDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkDefect::Truncated { at } => write!(f, "stream truncated mid-frame at byte {at}"),
            ChunkDefect::BadMagic { at, found } => {
                write!(f, "bad frame magic {found:#010x} at byte {at}")
            }
            ChunkDefect::Oversized { at, declared } => {
                write!(f, "chunk at byte {at} declares oversized payload of {declared} bytes")
            }
            ChunkDefect::ChecksumMismatch { at, expected, found } => write!(
                f,
                "chunk at byte {at} checksum mismatch (trailer {expected:#010x}, payload {found:#010x})"
            ),
            ChunkDefect::Malformed { at, what } => write!(f, "malformed frame at byte {at}: {what}"),
            ChunkDefect::InvalidInterval { at, source } => {
                write!(f, "invalid interval in chunk at byte {at}: {source}")
            }
            ChunkDefect::IndexGap { expected, found } => {
                write!(f, "interval index gap: expected {expected}, chunk starts at {found}")
            }
            ChunkDefect::MissingFooter => f.write_str("stream ended without a footer"),
            ChunkDefect::FooterMismatch { declared, replayed } => {
                write!(f, "footer declares {declared} intervals, replayed {replayed}")
            }
        }
    }
}

impl std::error::Error for ChunkDefect {}

/// The closed set of defect buckets — one per [`ChunkDefect`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DefectKind {
    /// Stream ended mid-frame.
    Truncated,
    /// Unknown frame magic.
    BadMagic,
    /// Payload length beyond the format bound.
    Oversized,
    /// CRC trailer mismatch.
    ChecksumMismatch,
    /// Structurally inconsistent payload.
    Malformed,
    /// Decoded interval violates trace invariants.
    InvalidInterval,
    /// Interval indices skipped by quarantined frames.
    IndexGap,
    /// No footer at end of stream.
    MissingFooter,
    /// Footer total disagrees with replayed intervals.
    FooterMismatch,
}

impl DefectKind {
    /// Every bucket, in declaration order.
    pub const ALL: [DefectKind; 9] = [
        DefectKind::Truncated,
        DefectKind::BadMagic,
        DefectKind::Oversized,
        DefectKind::ChecksumMismatch,
        DefectKind::Malformed,
        DefectKind::InvalidInterval,
        DefectKind::IndexGap,
        DefectKind::MissingFooter,
        DefectKind::FooterMismatch,
    ];

    /// Stable snake_case name (used in JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            DefectKind::Truncated => "truncated",
            DefectKind::BadMagic => "bad_magic",
            DefectKind::Oversized => "oversized",
            DefectKind::ChecksumMismatch => "checksum_mismatch",
            DefectKind::Malformed => "malformed",
            DefectKind::InvalidInterval => "invalid_interval",
            DefectKind::IndexGap => "index_gap",
            DefectKind::MissingFooter => "missing_footer",
            DefectKind::FooterMismatch => "footer_mismatch",
        }
    }

    fn index(self) -> usize {
        DefectKind::ALL.iter().position(|k| *k == self).unwrap_or(0)
    }
}

/// Per-kind defect counters accumulated by a quarantining reader.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefectCounts {
    counts: [u64; DefectKind::ALL.len()],
}

impl DefectCounts {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one defect.
    pub fn record(&mut self, defect: &ChunkDefect) {
        self.counts[defect.kind().index()] += 1;
    }

    /// The count for one bucket.
    pub fn count(&self, kind: DefectKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total defects across all buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(kind, count)` pairs for the non-zero buckets.
    pub fn nonzero(&self) -> impl Iterator<Item = (DefectKind, u64)> + '_ {
        DefectKind::ALL.into_iter().map(|k| (k, self.count(k))).filter(|(_, n)| *n > 0)
    }
}

impl fmt::Display for DefectCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total() == 0 {
            return f.write_str("clean");
        }
        let mut first = true;
        for (kind, n) in self.nonzero() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{}={n}", kind.name())?;
            first = false;
        }
        Ok(())
    }
}

/// What a reader does when it hits a [`ChunkDefect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DefectPolicy {
    /// Any defect is fatal ([`TraceFileError::Defect`]).
    Strict,
    /// Skip the damaged frame, resynchronise on the next frame magic,
    /// account the defect, and keep streaming.
    #[default]
    Quarantine,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Fatal errors from reading or writing a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file header itself is damaged — always fatal, since nothing
    /// after an untrusted header can be interpreted.
    Header(ChunkDefect),
    /// A chunk defect under [`DefectPolicy::Strict`].
    Defect(ChunkDefect),
    /// An interval handed to the writer violates trace invariants.
    Invalid(UnitsError),
    /// The header declares a format version this reader does not speak.
    Unsupported {
        /// The declared version.
        version: u16,
    },
    /// A configuration value out of the format's bounds (e.g. a chunk
    /// capacity of zero).
    Config(&'static str),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O error: {e}"),
            TraceFileError::Header(d) => write!(f, "trace file header damaged: {d}"),
            TraceFileError::Defect(d) => write!(f, "trace file defect (strict policy): {d}"),
            TraceFileError::Invalid(e) => write!(f, "invalid interval for trace file: {e}"),
            TraceFileError::Unsupported { version } => {
                write!(f, "unsupported trace file version {version}")
            }
            TraceFileError::Config(what) => write!(f, "invalid trace file configuration: {what}"),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            TraceFileError::Header(d) | TraceFileError::Defect(d) => Some(d),
            TraceFileError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

impl From<UnitsError> for TraceFileError {
    fn from(e: UnitsError) -> Self {
        TraceFileError::Invalid(e)
    }
}

// ---------------------------------------------------------------------------
// Phase tag codec
// ---------------------------------------------------------------------------

const TAG_ACTIVE: u8 = 0x10;

fn cstate_tag(state: PackageCState) -> u8 {
    match state {
        PackageCState::C0Min => 0,
        PackageCState::C2 => 1,
        PackageCState::C3 => 2,
        PackageCState::C6 => 3,
        PackageCState::C7 => 4,
        PackageCState::C8 => 5,
    }
}

fn workload_tag(wl: WorkloadType) -> u8 {
    match wl {
        WorkloadType::SingleThread => 0,
        WorkloadType::MultiThread => 1,
        WorkloadType::Graphics => 2,
        WorkloadType::BatteryLife => 3,
    }
}

fn phase_tag(phase: Phase) -> u8 {
    match phase {
        Phase::Idle(state) => cstate_tag(state),
        Phase::Active { workload_type, .. } => TAG_ACTIVE | workload_tag(workload_type),
    }
}

fn decode_cstate(tag: u8) -> Option<PackageCState> {
    PackageCState::ALL.get(usize::from(tag)).copied()
}

fn decode_workload(tag: u8) -> Option<WorkloadType> {
    match tag {
        0 => Some(WorkloadType::SingleThread),
        1 => Some(WorkloadType::MultiThread),
        2 => Some(WorkloadType::Graphics),
        3 => Some(WorkloadType::BatteryLife),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Little-endian helpers (no serde: the vendored crate is a no-op stub)
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes.get(at..at + 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming trace-file writer: buffers intervals into fixed-capacity
/// chunks, CRC-trails each chunk, and closes the stream with a footer.
///
/// Every pushed interval is validated ([`TraceInterval::validate`]), so
/// a file this writer produces never contains an interval the reader
/// would quarantine.
#[derive(Debug)]
pub struct TraceFileWriter<W: Write> {
    sink: W,
    chunk_capacity: usize,
    pending: Vec<TraceInterval>,
    next_index: u64,
    total_intervals: u64,
    total_duration: f64,
}

impl<W: Write> TraceFileWriter<W> {
    /// Starts a trace file on `sink`, writing the header immediately.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Config`] for a zero or over-bound chunk
    /// capacity or an over-long name; [`TraceFileError::Io`] if the
    /// header write fails.
    pub fn new(mut sink: W, name: &str, chunk_capacity: usize) -> Result<Self, TraceFileError> {
        if chunk_capacity == 0 {
            return Err(TraceFileError::Config("chunk capacity must be nonzero"));
        }
        if chunk_capacity > MAX_CHUNK_INTERVALS {
            return Err(TraceFileError::Config("chunk capacity exceeds MAX_CHUNK_INTERVALS"));
        }
        if name.len() > MAX_NAME {
            return Err(TraceFileError::Config("trace name exceeds MAX_NAME bytes"));
        }
        let header = encode_header(name, chunk_capacity as u32);
        sink.write_all(&header)?;
        Ok(Self {
            sink,
            chunk_capacity,
            pending: Vec::with_capacity(chunk_capacity),
            next_index: 0,
            total_intervals: 0,
            total_duration: 0.0,
        })
    }

    /// Appends one interval, flushing a chunk frame when the pending
    /// buffer reaches the chunk capacity.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Invalid`] if the interval violates trace
    /// invariants; [`TraceFileError::Io`] on write failure.
    pub fn push(&mut self, interval: TraceInterval) -> Result<(), TraceFileError> {
        interval.validate()?;
        self.pending.push(interval);
        self.total_intervals += 1;
        self.total_duration += interval.duration.get();
        if self.pending.len() >= self.chunk_capacity {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends every interval of `trace`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceFileWriter::push`].
    pub fn push_trace(&mut self, trace: &Trace) -> Result<(), TraceFileError> {
        for interval in trace.intervals() {
            self.push(*interval)?;
        }
        Ok(())
    }

    /// Intervals written so far (including those still pending in the
    /// current partial chunk).
    pub fn intervals_written(&self) -> u64 {
        self.total_intervals
    }

    fn flush_chunk(&mut self) -> Result<(), TraceFileError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let frame = encode_chunk(self.next_index, &self.pending);
        self.sink.write_all(&frame)?;
        self.next_index += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial chunk, writes the footer, and returns
    /// the underlying sink.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Io`] on write or flush failure.
    pub fn finish(mut self) -> Result<W, TraceFileError> {
        self.flush_chunk()?;
        let footer = encode_footer(self.total_intervals, self.total_duration);
        self.sink.write_all(&footer)?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

fn encode_header(name: &str, chunk_capacity: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + name.len());
    put_u32(&mut out, FILE_MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags, reserved
    put_u32(&mut out, chunk_capacity);
    put_u32(&mut out, name.len() as u32);
    out.extend_from_slice(name.as_bytes());
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn encode_chunk(first_index: u64, intervals: &[TraceInterval]) -> Vec<u8> {
    let count = intervals.len();
    let mut payload = Vec::with_capacity(CHUNK_PREFIX + count * BYTES_PER_INTERVAL);
    put_u64(&mut payload, first_index);
    put_u32(&mut payload, count as u32);
    for i in intervals {
        put_u64(&mut payload, i.duration.get().to_bits());
    }
    for i in intervals {
        payload.push(phase_tag(i.phase));
    }
    for i in intervals {
        put_u64(&mut payload, i.phase.ar().get().to_bits());
    }
    let mut frame = Vec::with_capacity(FRAME_PREFIX + payload.len() + 4);
    put_u32(&mut frame, CHUNK_MAGIC);
    put_u32(&mut frame, payload.len() as u32);
    let crc = crc32(&payload);
    frame.extend_from_slice(&payload);
    put_u32(&mut frame, crc);
    frame
}

fn encode_footer(total_intervals: u64, total_duration: f64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(FOOTER_PAYLOAD);
    put_u64(&mut payload, total_intervals);
    put_u64(&mut payload, total_duration.to_bits());
    let mut frame = Vec::with_capacity(FRAME_PREFIX + FOOTER_PAYLOAD + 4);
    put_u32(&mut frame, FOOTER_MAGIC);
    put_u32(&mut frame, payload.len() as u32);
    let crc = crc32(&payload);
    frame.extend_from_slice(&payload);
    put_u32(&mut frame, crc);
    frame
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Parsed, CRC-verified file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFileHeader {
    /// Format version.
    pub version: u16,
    /// Reserved flag bits (zero today).
    pub flags: u16,
    /// Chunk capacity the writer used.
    pub chunk_capacity: u32,
    /// Trace name.
    pub name: String,
    /// FNV-1a fingerprint of the raw header bytes — binds checkpoints
    /// to this file.
    pub fingerprint: u64,
}

/// Bounded-memory streaming reader over a chunked trace file.
///
/// Pulls bytes from any [`Read`] source through a rolling window whose
/// size is bounded by the largest legal frame (~1.1 MiB), decodes one
/// chunk at a time, and yields intervals via
/// [`TraceReader::next_interval`] — millions of intervals stream through
/// without ever materialising a `Vec<TraceInterval>` of the whole trace.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    policy: DefectPolicy,
    header: TraceFileHeader,
    /// Rolling byte window; `pos` is the consumed prefix.
    buf: Vec<u8>,
    pos: usize,
    /// File offset of `buf[0]`.
    base: u64,
    eof: bool,
    done: bool,
    footer_seen: bool,
    /// Decoded intervals from the current chunk, drained front-to-back.
    current: Vec<TraceInterval>,
    current_pos: usize,
    /// Next interval index a good chunk is expected to start at.
    expected_index: u64,
    intervals_emitted: u64,
    intervals_lost: u64,
    chunks_ok: u64,
    chunks_quarantined: u64,
    defects: DefectCounts,
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file for streaming.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Io`] if the file cannot be opened, plus the
    /// header conditions of [`TraceReader::new`].
    pub fn open(path: impl AsRef<Path>, policy: DefectPolicy) -> Result<Self, TraceFileError> {
        let file = File::open(path)?;
        TraceReader::new(BufReader::new(file), policy)
    }
}

impl<'a> TraceReader<&'a [u8]> {
    /// Builds a reader over an in-memory byte slice.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::new`].
    pub fn from_bytes(bytes: &'a [u8], policy: DefectPolicy) -> Result<Self, TraceFileError> {
        TraceReader::new(bytes, policy)
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps a byte source, reading and verifying the header eagerly.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Header`] for any header damage (truncation,
    /// bad magic, bad CRC, over-long name, non-UTF-8 name),
    /// [`TraceFileError::Unsupported`] for an unknown version, and
    /// [`TraceFileError::Io`] on read failure. Header damage is always
    /// fatal regardless of policy: nothing after an untrusted header
    /// can be interpreted.
    pub fn new(src: R, policy: DefectPolicy) -> Result<Self, TraceFileError> {
        let mut reader = Self {
            src,
            policy,
            header: TraceFileHeader {
                version: 0,
                flags: 0,
                chunk_capacity: 0,
                name: String::new(),
                fingerprint: 0,
            },
            buf: Vec::new(),
            pos: 0,
            base: 0,
            eof: false,
            done: false,
            footer_seen: false,
            current: Vec::new(),
            current_pos: 0,
            expected_index: 0,
            intervals_emitted: 0,
            intervals_lost: 0,
            chunks_ok: 0,
            chunks_quarantined: 0,
            defects: DefectCounts::new(),
        };
        reader.read_header()?;
        Ok(reader)
    }

    /// The verified header.
    pub fn header(&self) -> &TraceFileHeader {
        &self.header
    }

    /// FNV-1a fingerprint of the header bytes.
    pub fn fingerprint(&self) -> u64 {
        self.header.fingerprint
    }

    /// Defect counters accumulated so far.
    pub fn defects(&self) -> &DefectCounts {
        &self.defects
    }

    /// Chunks decoded and emitted intact so far.
    pub fn chunks_ok(&self) -> u64 {
        self.chunks_ok
    }

    /// Chunks skipped because of defects so far.
    pub fn chunks_quarantined(&self) -> u64 {
        self.chunks_quarantined
    }

    /// Intervals known to have been lost to quarantined frames.
    pub fn intervals_lost(&self) -> u64 {
        self.intervals_lost
    }

    /// Intervals emitted so far.
    pub fn intervals_emitted(&self) -> u64 {
        self.intervals_emitted
    }

    /// Whether a valid footer frame was seen.
    pub fn footer_seen(&self) -> bool {
        self.footer_seen
    }

    /// Yields the next interval, or `Ok(None)` at end of stream.
    ///
    /// Under [`DefectPolicy::Quarantine`] this never fails on damaged
    /// *content* — damaged frames are skipped and accounted — only on
    /// genuine I/O errors. Under [`DefectPolicy::Strict`] the first
    /// defect is returned as [`TraceFileError::Defect`].
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Io`] and (strict policy only)
    /// [`TraceFileError::Defect`].
    pub fn next_interval(&mut self) -> Result<Option<TraceInterval>, TraceFileError> {
        loop {
            if self.current_pos < self.current.len() {
                let interval = self.current[self.current_pos];
                self.current_pos += 1;
                self.intervals_emitted += 1;
                return Ok(Some(interval));
            }
            if self.done {
                return Ok(None);
            }
            self.read_next_chunk()?;
        }
    }

    /// Skips the next `n` emitted intervals (decoding and quarantining
    /// exactly as a full read would, so defect accounting is identical).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::next_interval`].
    pub fn skip_intervals(&mut self, n: u64) -> Result<u64, TraceFileError> {
        let mut skipped = 0;
        while skipped < n {
            match self.next_interval()? {
                Some(_) => skipped += 1,
                None => break,
            }
        }
        Ok(skipped)
    }

    // -- internals ---------------------------------------------------------

    fn defect(&mut self, defect: ChunkDefect) -> Result<(), TraceFileError> {
        self.defects.record(&defect);
        match self.policy {
            DefectPolicy::Strict => {
                self.done = true;
                Err(TraceFileError::Defect(defect))
            }
            DefectPolicy::Quarantine => Ok(()),
        }
    }

    /// Ensures at least `want` unconsumed bytes are buffered, or EOF.
    fn fill(&mut self, want: usize) -> io::Result<()> {
        while !self.eof && self.buf.len() - self.pos < want {
            let mut chunk = [0u8; READ_CHUNK];
            match self.src.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    fn available(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Drops the consumed prefix so the window stays bounded.
    fn compact(&mut self) {
        if self.pos >= READ_CHUNK {
            self.buf.drain(..self.pos);
            self.base += self.pos as u64;
            self.pos = 0;
        }
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn read_header(&mut self) -> Result<(), TraceFileError> {
        // Fixed prefix: magic + version + flags + chunk_capacity + name_len.
        self.fill(16)?;
        let head = &self.buf[self.pos..];
        if head.len() < 16 {
            return Err(TraceFileError::Header(ChunkDefect::Truncated { at: 0 }));
        }
        let magic = get_u32(head, 0).unwrap_or(0);
        if magic != FILE_MAGIC {
            return Err(TraceFileError::Header(ChunkDefect::BadMagic { at: 0, found: magic }));
        }
        let name_len = get_u32(head, 12).unwrap_or(0) as usize;
        if name_len > MAX_NAME {
            return Err(TraceFileError::Header(ChunkDefect::Oversized {
                at: 0,
                declared: name_len as u64,
            }));
        }
        let total = 16 + name_len + 4;
        self.fill(total)?;
        if self.available() < total {
            return Err(TraceFileError::Header(ChunkDefect::Truncated { at: 0 }));
        }
        let head = &self.buf[self.pos..self.pos + total];
        let body = &head[..16 + name_len];
        let declared_crc = get_u32(head, 16 + name_len).unwrap_or(0);
        let actual_crc = crc32(body);
        if declared_crc != actual_crc {
            return Err(TraceFileError::Header(ChunkDefect::ChecksumMismatch {
                at: 0,
                expected: declared_crc,
                found: actual_crc,
            }));
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != VERSION {
            return Err(TraceFileError::Unsupported { version });
        }
        let flags = u16::from_le_bytes([head[6], head[7]]);
        let chunk_capacity = get_u32(head, 8).unwrap_or(0);
        let name = match std::str::from_utf8(&head[16..16 + name_len]) {
            Ok(s) => s.to_string(),
            Err(_) => {
                return Err(TraceFileError::Header(ChunkDefect::Malformed {
                    at: 0,
                    what: "header name is not UTF-8",
                }))
            }
        };
        self.header =
            TraceFileHeader { version, flags, chunk_capacity, name, fingerprint: fnv1a64(head) };
        self.pos += total;
        Ok(())
    }

    /// Advances past damaged bytes to the next plausible frame magic.
    /// Consumes at least one byte so quarantine always makes progress.
    fn resync(&mut self) -> Result<(), TraceFileError> {
        self.pos += 1;
        loop {
            self.compact();
            self.fill(4)?;
            let window = &self.buf[self.pos..];
            if window.len() < 4 {
                // Let the main loop classify the tail.
                self.pos = self.buf.len();
                return Ok(());
            }
            if let Some(found) = window.windows(4).position(|w| w == b"CHNK" || w == b"TEND") {
                self.pos += found;
                return Ok(());
            }
            // Keep the last 3 bytes: a magic may straddle the boundary.
            self.pos = self.buf.len() - 3;
            if self.eof {
                self.pos = self.buf.len();
                return Ok(());
            }
        }
    }

    /// Reads and decodes the next frame, refilling `self.current` on a
    /// good chunk. Sets `self.done` at end of stream.
    fn read_next_chunk(&mut self) -> Result<(), TraceFileError> {
        self.current.clear();
        self.current_pos = 0;
        loop {
            if self.done {
                return Ok(());
            }
            self.compact();
            self.fill(FRAME_PREFIX)?;
            let avail = self.available();
            if avail == 0 {
                self.done = true;
                if !self.footer_seen {
                    self.defect(ChunkDefect::MissingFooter)?;
                }
                return Ok(());
            }
            if avail < FRAME_PREFIX {
                let at = self.offset();
                self.pos = self.buf.len();
                self.done = true;
                self.defect(ChunkDefect::Truncated { at })?;
                if !self.footer_seen {
                    self.defect(ChunkDefect::MissingFooter)?;
                }
                return Ok(());
            }
            let at = self.offset();
            let magic = get_u32(&self.buf, self.pos).unwrap_or(0);
            let declared_len = get_u32(&self.buf, self.pos + 4).unwrap_or(0) as usize;
            if magic != CHUNK_MAGIC && magic != FOOTER_MAGIC {
                self.defect(ChunkDefect::BadMagic { at, found: magic })?;
                self.resync()?;
                continue;
            }
            let len_bound = if magic == FOOTER_MAGIC { FOOTER_PAYLOAD } else { MAX_PAYLOAD };
            if declared_len > len_bound {
                self.defect(ChunkDefect::Oversized { at, declared: declared_len as u64 })?;
                self.resync()?;
                continue;
            }
            let frame_len = FRAME_PREFIX + declared_len + 4;
            self.fill(frame_len)?;
            if self.available() < frame_len {
                self.pos = self.buf.len();
                self.done = true;
                self.defect(ChunkDefect::Truncated { at })?;
                if !self.footer_seen {
                    self.defect(ChunkDefect::MissingFooter)?;
                }
                return Ok(());
            }
            let payload_start = self.pos + FRAME_PREFIX;
            let payload = &self.buf[payload_start..payload_start + declared_len];
            let declared_crc = get_u32(&self.buf, payload_start + declared_len).unwrap_or(0);
            let actual_crc = crc32(payload);
            if declared_crc != actual_crc {
                // The frame shape was plausible, so skip it wholesale —
                // resyncing into the middle of a damaged payload would
                // only manufacture bad-magic noise.
                self.pos += frame_len;
                self.chunks_quarantined += 1;
                self.defect(ChunkDefect::ChecksumMismatch {
                    at,
                    expected: declared_crc,
                    found: actual_crc,
                })?;
                continue;
            }
            if magic == FOOTER_MAGIC {
                self.pos += frame_len;
                match self.decode_footer(at, declared_len) {
                    Ok(()) => {
                        self.footer_seen = true;
                        self.done = true;
                        return Ok(());
                    }
                    Err(defect) => {
                        self.defect(defect)?;
                        continue;
                    }
                }
            }
            match decode_chunk_payload(at, payload) {
                Ok((first_index, intervals)) => {
                    self.pos += frame_len;
                    if first_index != self.expected_index {
                        self.intervals_lost += first_index.saturating_sub(self.expected_index);
                        self.defect(ChunkDefect::IndexGap {
                            expected: self.expected_index,
                            found: first_index,
                        })?;
                    }
                    self.expected_index = first_index + intervals.len() as u64;
                    self.chunks_ok += 1;
                    self.current = intervals;
                    self.current_pos = 0;
                    return Ok(());
                }
                Err(defect) => {
                    self.pos += frame_len;
                    self.chunks_quarantined += 1;
                    self.defect(defect)?;
                    continue;
                }
            }
        }
    }

    fn decode_footer(&mut self, at: u64, declared_len: usize) -> Result<(), ChunkDefect> {
        if declared_len != FOOTER_PAYLOAD {
            return Err(ChunkDefect::Malformed { at, what: "footer payload length" });
        }
        let payload_start = self.pos - 4 - FOOTER_PAYLOAD;
        let declared_total = get_u64(&self.buf, payload_start).unwrap_or(0);
        let accounted = self.intervals_emitted
            + (self.current.len() - self.current_pos) as u64
            + self.intervals_lost;
        if declared_total != accounted {
            self.intervals_lost += declared_total.saturating_sub(accounted);
            return Err(ChunkDefect::FooterMismatch {
                declared: declared_total,
                replayed: accounted,
            });
        }
        Ok(())
    }
}

fn decode_chunk_payload(at: u64, payload: &[u8]) -> Result<(u64, Vec<TraceInterval>), ChunkDefect> {
    if payload.len() < CHUNK_PREFIX {
        return Err(ChunkDefect::Malformed { at, what: "chunk payload shorter than prefix" });
    }
    let first_index =
        get_u64(payload, 0).ok_or(ChunkDefect::Malformed { at, what: "chunk prefix" })?;
    let count =
        get_u32(payload, 8).ok_or(ChunkDefect::Malformed { at, what: "chunk prefix" })? as usize;
    if count > MAX_CHUNK_INTERVALS {
        return Err(ChunkDefect::Malformed { at, what: "chunk interval count over bound" });
    }
    if payload.len() != CHUNK_PREFIX + count * BYTES_PER_INTERVAL {
        return Err(ChunkDefect::Malformed { at, what: "payload length != 12 + 17 * count" });
    }
    let durations_at = CHUNK_PREFIX;
    let tags_at = durations_at + count * 8;
    let ars_at = tags_at + count;
    let mut intervals = Vec::with_capacity(count);
    for i in 0..count {
        let duration_bits = get_u64(payload, durations_at + i * 8)
            .ok_or(ChunkDefect::Malformed { at, what: "duration column" })?;
        let tag = payload[tags_at + i];
        let ar_bits = get_u64(payload, ars_at + i * 8)
            .ok_or(ChunkDefect::Malformed { at, what: "ar column" })?;
        let duration = Seconds::new(f64::from_bits(duration_bits));
        let interval = if tag & TAG_ACTIVE != 0 {
            let wl = decode_workload(tag & !TAG_ACTIVE)
                .ok_or(ChunkDefect::Malformed { at, what: "unknown workload tag" })?;
            let ar = ApplicationRatio::new(f64::from_bits(ar_bits))
                .map_err(|source| ChunkDefect::InvalidInterval { at, source })?;
            TraceInterval::try_active(duration, wl, ar)
                .map_err(|source| ChunkDefect::InvalidInterval { at, source })?
        } else {
            let state = decode_cstate(tag)
                .ok_or(ChunkDefect::Malformed { at, what: "unknown c-state tag" })?;
            TraceInterval::try_idle(duration, state)
                .map_err(|source| ChunkDefect::InvalidInterval { at, source })?
        };
        intervals.push(interval);
    }
    Ok((first_index, intervals))
}

// ---------------------------------------------------------------------------
// Frame map (corruption tooling)
// ---------------------------------------------------------------------------

/// What a [`FrameSpan`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// The file header.
    Header,
    /// A chunk frame.
    Chunk,
    /// The footer frame.
    Footer,
}

/// One structural span of a well-formed trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// Byte offset of the span.
    pub offset: usize,
    /// Span length in bytes.
    pub len: usize,
    /// What the span is.
    pub kind: FrameKind,
}

/// Maps the frames of a *well-formed* encoded trace file — the poke
/// points for corruption tests and chaos legs. Trusts the structure (it
/// is meant to run on bytes this module just encoded); returns `None`
/// as soon as the structure stops making sense.
pub fn frame_spans(bytes: &[u8]) -> Option<Vec<FrameSpan>> {
    let name_len = get_u32(bytes, 12)? as usize;
    let header_len = 16 + name_len + 4;
    bytes.get(..header_len)?;
    let mut spans = vec![FrameSpan { offset: 0, len: header_len, kind: FrameKind::Header }];
    let mut at = header_len;
    while at < bytes.len() {
        let magic = get_u32(bytes, at)?;
        let payload_len = get_u32(bytes, at + 4)? as usize;
        let len = FRAME_PREFIX + payload_len + 4;
        bytes.get(at..at + len)?;
        let kind = match magic {
            m if m == CHUNK_MAGIC => FrameKind::Chunk,
            m if m == FOOTER_MAGIC => FrameKind::Footer,
            _ => return None,
        };
        spans.push(FrameSpan { offset: at, len, kind });
        at += len;
    }
    Some(spans)
}

// ---------------------------------------------------------------------------
// Convenience converters
// ---------------------------------------------------------------------------

/// Summary of a whole-file read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadSummary {
    /// Defects encountered.
    pub defects: DefectCounts,
    /// Chunks decoded intact.
    pub chunks_ok: u64,
    /// Chunks quarantined.
    pub chunks_quarantined: u64,
    /// Intervals known lost to quarantined frames.
    pub intervals_lost: u64,
    /// Whether a valid footer closed the stream.
    pub footer_seen: bool,
}

/// Encodes a whole trace to bytes with the given chunk capacity.
///
/// # Errors
///
/// Same conditions as [`TraceFileWriter::new`] and
/// [`TraceFileWriter::push`].
pub fn encode_trace(trace: &Trace, chunk_capacity: usize) -> Result<Vec<u8>, TraceFileError> {
    let mut writer = TraceFileWriter::new(Vec::new(), trace.name(), chunk_capacity)?;
    writer.push_trace(trace)?;
    writer.finish()
}

/// Writes a whole trace to `path` with [`DEFAULT_CHUNK_INTERVALS`].
///
/// # Errors
///
/// Same conditions as [`write_trace_chunked`].
pub fn write_trace(path: impl AsRef<Path>, trace: &Trace) -> Result<(), TraceFileError> {
    write_trace_chunked(path, trace, DEFAULT_CHUNK_INTERVALS)
}

/// Writes a whole trace to `path` with an explicit chunk capacity.
///
/// # Errors
///
/// Same conditions as [`TraceFileWriter::new`] and
/// [`TraceFileWriter::push`], plus file-creation I/O errors.
pub fn write_trace_chunked(
    path: impl AsRef<Path>,
    trace: &Trace,
    chunk_capacity: usize,
) -> Result<(), TraceFileError> {
    let file = File::create(path)?;
    let mut writer = TraceFileWriter::new(BufWriter::new(file), trace.name(), chunk_capacity)?;
    writer.push_trace(trace)?;
    writer.finish()?;
    Ok(())
}

/// Reads a whole trace file into memory (small files, tests, tooling —
/// streaming replay should use [`TraceReader`] directly).
///
/// # Errors
///
/// Same conditions as [`TraceReader::open`] and
/// [`TraceReader::next_interval`].
pub fn read_trace(
    path: impl AsRef<Path>,
    policy: DefectPolicy,
) -> Result<(Trace, ReadSummary), TraceFileError> {
    let mut reader = TraceReader::open(path, policy)?;
    collect_trace(&mut reader)
}

/// Decodes a whole in-memory encoding (tests, tooling).
///
/// # Errors
///
/// Same conditions as [`TraceReader::from_bytes`] and
/// [`TraceReader::next_interval`].
pub fn decode_trace(
    bytes: &[u8],
    policy: DefectPolicy,
) -> Result<(Trace, ReadSummary), TraceFileError> {
    let mut reader = TraceReader::from_bytes(bytes, policy)?;
    collect_trace(&mut reader)
}

fn collect_trace<R: Read>(
    reader: &mut TraceReader<R>,
) -> Result<(Trace, ReadSummary), TraceFileError> {
    let mut intervals = Vec::new();
    while let Some(interval) = reader.next_interval()? {
        intervals.push(interval);
    }
    let summary = ReadSummary {
        defects: *reader.defects(),
        chunks_ok: reader.chunks_ok(),
        chunks_quarantined: reader.chunks_quarantined(),
        intervals_lost: reader.intervals_lost(),
        footer_seen: reader.footer_seen(),
    };
    let name = reader.header().name.clone();
    Ok((Trace::new(name, intervals), summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::TraceGenerator;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    fn sample_trace(n: usize) -> Trace {
        let mut intervals = Vec::with_capacity(n);
        for i in 0..n {
            let interval = match i % 4 {
                0 => TraceInterval::active(
                    Seconds::from_millis(1.0 + i as f64 * 0.01),
                    WorkloadType::SingleThread,
                    ar(0.3 + 0.6 * (i % 7) as f64 / 7.0),
                ),
                1 => TraceInterval::active(
                    Seconds::from_millis(2.5),
                    WorkloadType::Graphics,
                    ar(0.71),
                ),
                2 => TraceInterval::idle(Seconds::from_millis(5.0), PackageCState::C6),
                _ => TraceInterval::idle(Seconds::from_millis(0.5), PackageCState::C0Min),
            };
            intervals.push(interval);
        }
        Trace::new("sample", intervals)
    }

    #[test]
    fn crc_matches_wire_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let trace = sample_trace(1000);
        let bytes = encode_trace(&trace, 64).unwrap();
        let (decoded, summary) = decode_trace(&bytes, DefectPolicy::Strict).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(summary.defects.total(), 0);
        assert!(summary.footer_seen);
        assert_eq!(summary.chunks_ok, 1000 / 64 + 1);
    }

    #[test]
    fn round_trip_generated_trace() {
        let trace = TraceGenerator::new(42).generate("gen", 500);
        let bytes = encode_trace(&trace, DEFAULT_CHUNK_INTERVALS).unwrap();
        let (decoded, _) = decode_trace(&bytes, DefectPolicy::Strict).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new("empty", vec![]);
        let bytes = encode_trace(&trace, 16).unwrap();
        let (decoded, summary) = decode_trace(&bytes, DefectPolicy::Strict).unwrap();
        assert_eq!(decoded, trace);
        assert!(summary.footer_seen);
    }

    #[test]
    fn streaming_reader_matches_collect() {
        let trace = sample_trace(257);
        let bytes = encode_trace(&trace, 32).unwrap();
        let mut reader = TraceReader::from_bytes(&bytes, DefectPolicy::Strict).unwrap();
        let mut streamed = Vec::new();
        while let Some(i) = reader.next_interval().unwrap() {
            streamed.push(i);
        }
        assert_eq!(streamed, trace.intervals());
        assert_eq!(reader.intervals_emitted(), 257);
    }

    #[test]
    fn writer_rejects_invalid_intervals_and_config() {
        let mut writer = TraceFileWriter::new(Vec::new(), "w", 8).unwrap();
        let bad = TraceInterval::idle(Seconds::new(f64::NAN), PackageCState::C6);
        assert!(matches!(writer.push(bad), Err(TraceFileError::Invalid(_))));
        assert!(matches!(TraceFileWriter::new(Vec::new(), "w", 0), Err(TraceFileError::Config(_))));
        assert!(matches!(
            TraceFileWriter::new(Vec::new(), "w", MAX_CHUNK_INTERVALS + 1),
            Err(TraceFileError::Config(_))
        ));
    }

    #[test]
    fn header_corruption_is_always_fatal() {
        let bytes = encode_trace(&sample_trace(8), 4).unwrap();
        let mut bad = bytes.clone();
        bad[1] ^= 0xFF; // magic
        assert!(matches!(
            TraceReader::from_bytes(&bad, DefectPolicy::Quarantine),
            Err(TraceFileError::Header(ChunkDefect::BadMagic { .. }))
        ));
        let mut bad = bytes.clone();
        bad[17] ^= 0x01; // name byte → header CRC breaks
        assert!(matches!(
            TraceReader::from_bytes(&bad, DefectPolicy::Quarantine),
            Err(TraceFileError::Header(ChunkDefect::ChecksumMismatch { .. }))
        ));
        assert!(matches!(
            TraceReader::from_bytes(&bytes[..10], DefectPolicy::Quarantine),
            Err(TraceFileError::Header(ChunkDefect::Truncated { .. }))
        ));
    }

    #[test]
    fn unsupported_version_is_typed() {
        let mut bytes = encode_trace(&sample_trace(4), 4).unwrap();
        bytes[4] = 9; // version
                      // Re-seal the header CRC so only the version is wrong.
        let name_len = get_u32(&bytes, 12).unwrap() as usize;
        let crc = crc32(&bytes[..16 + name_len]);
        bytes[16 + name_len..16 + name_len + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            TraceReader::from_bytes(&bytes, DefectPolicy::Quarantine),
            Err(TraceFileError::Unsupported { version: 9 })
        ));
    }

    #[test]
    fn poisoned_chunk_is_quarantined_with_exact_accounting() {
        let trace = sample_trace(256);
        let bytes = encode_trace(&trace, 32).unwrap();
        let spans = frame_spans(&bytes).unwrap();
        let chunks: Vec<_> = spans.iter().filter(|s| s.kind == FrameKind::Chunk).collect();
        assert_eq!(chunks.len(), 8);
        // Poison the third chunk's payload.
        let mut bad = bytes.clone();
        bad[chunks[2].offset + FRAME_PREFIX + 20] ^= 0x40;
        let (decoded, summary) = decode_trace(&bad, DefectPolicy::Quarantine).unwrap();
        assert_eq!(decoded.intervals().len(), 256 - 32);
        assert_eq!(summary.chunks_quarantined, 1);
        assert_eq!(summary.intervals_lost, 32);
        assert_eq!(summary.defects.count(DefectKind::ChecksumMismatch), 1);
        assert_eq!(summary.defects.count(DefectKind::IndexGap), 1);
        // FooterMismatch is NOT raised: emitted + lost == declared.
        assert_eq!(summary.defects.count(DefectKind::FooterMismatch), 0);
        assert!(summary.footer_seen);
        // The surviving intervals are bit-exact.
        let expected: Vec<_> =
            trace.intervals()[..64].iter().chain(&trace.intervals()[96..]).copied().collect();
        assert_eq!(decoded.intervals(), expected.as_slice());
        // Strict policy refuses the same file.
        assert!(matches!(
            decode_trace(&bad, DefectPolicy::Strict),
            Err(TraceFileError::Defect(ChunkDefect::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn truncated_stream_is_accounted_not_panicked() {
        let trace = sample_trace(128);
        let bytes = encode_trace(&trace, 16).unwrap();
        for cut in [bytes.len() - 5, bytes.len() / 2, 30] {
            let (decoded, summary) = decode_trace(&bytes[..cut], DefectPolicy::Quarantine).unwrap();
            assert!(decoded.intervals().len() <= 128);
            assert!(!summary.footer_seen);
            assert!(
                summary.defects.count(DefectKind::Truncated) == 1
                    || summary.defects.count(DefectKind::MissingFooter) == 1,
                "cut {cut}: {}",
                summary.defects
            );
        }
    }

    #[test]
    fn garbage_between_frames_resyncs() {
        let trace = sample_trace(64);
        let bytes = encode_trace(&trace, 16).unwrap();
        let spans = frame_spans(&bytes).unwrap();
        let second_chunk = spans.iter().filter(|s| s.kind == FrameKind::Chunk).nth(1).unwrap();
        // Splice garbage bytes before the second chunk.
        let mut bad = Vec::new();
        bad.extend_from_slice(&bytes[..second_chunk.offset]);
        bad.extend_from_slice(&[0xAB; 37]);
        bad.extend_from_slice(&bytes[second_chunk.offset..]);
        let (decoded, summary) = decode_trace(&bad, DefectPolicy::Quarantine).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(summary.defects.count(DefectKind::BadMagic), 1);
        assert!(summary.footer_seen);
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let trace = sample_trace(32);
        let bytes = encode_trace(&trace, 16).unwrap();
        let spans = frame_spans(&bytes).unwrap();
        let first_chunk = spans.iter().find(|s| s.kind == FrameKind::Chunk).unwrap();
        let mut bad = bytes.clone();
        bad[first_chunk.offset + 4..first_chunk.offset + 8]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let (_, summary) = decode_trace(&bad, DefectPolicy::Quarantine).unwrap();
        assert!(summary.defects.count(DefectKind::Oversized) >= 1);
    }

    #[test]
    fn fingerprint_tracks_header_identity() {
        let a = encode_trace(&Trace::new("alpha", vec![]), 16).unwrap();
        let b = encode_trace(&Trace::new("beta", vec![]), 16).unwrap();
        let c = encode_trace(&Trace::new("alpha", vec![]), 32).unwrap();
        let fp = |bytes: &[u8]| {
            TraceReader::from_bytes(bytes, DefectPolicy::Strict).unwrap().fingerprint()
        };
        assert_eq!(fp(&a), fp(&a));
        assert_ne!(fp(&a), fp(&b));
        assert_ne!(fp(&a), fp(&c));
    }

    #[test]
    fn frame_spans_cover_the_file_exactly() {
        let bytes = encode_trace(&sample_trace(100), 16).unwrap();
        let spans = frame_spans(&bytes).unwrap();
        assert_eq!(spans.first().unwrap().kind, FrameKind::Header);
        assert_eq!(spans.last().unwrap().kind, FrameKind::Footer);
        let mut at = 0;
        for s in &spans {
            assert_eq!(s.offset, at);
            at += s.len;
        }
        assert_eq!(at, bytes.len());
    }

    #[test]
    fn skip_intervals_matches_full_reads() {
        let trace = sample_trace(200);
        let bytes = encode_trace(&trace, 32).unwrap();
        let mut reader = TraceReader::from_bytes(&bytes, DefectPolicy::Strict).unwrap();
        assert_eq!(reader.skip_intervals(150).unwrap(), 150);
        let next = reader.next_interval().unwrap().unwrap();
        assert_eq!(next, trace.intervals()[150]);
        // Skipping past the end reports the shortfall.
        assert_eq!(reader.skip_intervals(1000).unwrap(), 49);
    }
}
