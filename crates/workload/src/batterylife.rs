//! Battery-life workload profiles (Fig. 8c of the paper).
//!
//! The four workloads commonly used to evaluate mobile battery life —
//! video playback, video conferencing, web browsing, and light gaming —
//! are dominated by package C-state residency. §7.1 gives their C0MIN
//! residencies (10 %, 20 %, 30 %, 40 % respectively); during the remaining
//! time the compute domains are idle while the system agent periodically
//! wakes for display refresh (C2) and otherwise sits in C8. §5's video
//! playback example fixes the C2 share at 5 %.

use crate::trace::{Trace, TraceInterval};
use pdn_proc::PackageCState;
use pdn_units::{Ratio, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four battery-life workloads of Fig. 8c.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatteryLifeWorkload {
    /// Video playback: 10 % C0MIN / 5 % C2 / 85 % C8 (§5 Observation 3).
    VideoPlayback,
    /// Video conferencing: 20 % C0MIN.
    VideoConferencing,
    /// Web browsing: 30 % C0MIN.
    WebBrowsing,
    /// Light gaming: 40 % C0MIN.
    LightGaming,
}

impl BatteryLifeWorkload {
    /// All four workloads in Fig. 8c order.
    pub const ALL: [BatteryLifeWorkload; 4] = [
        BatteryLifeWorkload::VideoPlayback,
        BatteryLifeWorkload::VideoConferencing,
        BatteryLifeWorkload::WebBrowsing,
        BatteryLifeWorkload::LightGaming,
    ];

    /// The power-state residency profile of the workload.
    pub fn residency(self) -> ResidencyProfile {
        let (c0min, c2, c8) = match self {
            BatteryLifeWorkload::VideoPlayback => (0.10, 0.05, 0.85),
            BatteryLifeWorkload::VideoConferencing => (0.20, 0.08, 0.72),
            BatteryLifeWorkload::WebBrowsing => (0.30, 0.10, 0.60),
            BatteryLifeWorkload::LightGaming => (0.40, 0.10, 0.50),
        };
        ResidencyProfile::new(c0min, c2, c8).expect("static residencies are valid")
    }

    /// Builds a per-frame trace: a 60 Hz frame (16.67 ms) split into the
    /// residency profile's phases, repeated `frames` times.
    pub fn as_trace(self, frames: usize) -> Trace {
        let frame_ms = 1000.0 / 60.0;
        let r = self.residency();
        // The active phase is the C0MIN state itself — "active at minimum
        // frequency" with the paper-calibrated state power (§5).
        let frame = Trace::new(
            self.to_string(),
            vec![
                TraceInterval::idle(
                    Seconds::from_millis(frame_ms * r.c0min.get()),
                    PackageCState::C0Min,
                ),
                TraceInterval::idle(Seconds::from_millis(frame_ms * r.c2.get()), PackageCState::C2),
                TraceInterval::idle(Seconds::from_millis(frame_ms * r.c8.get()), PackageCState::C8),
            ],
        );
        let mut out = Trace::new(self.to_string(), vec![]);
        for _ in 0..frames {
            out.extend(&frame);
        }
        out
    }
}

impl fmt::Display for BatteryLifeWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BatteryLifeWorkload::VideoPlayback => "video-playback",
            BatteryLifeWorkload::VideoConferencing => "video-conferencing",
            BatteryLifeWorkload::WebBrowsing => "web-browsing",
            BatteryLifeWorkload::LightGaming => "light-gaming",
        };
        f.write_str(s)
    }
}

/// Power-state residencies of a battery-life workload: the fractions of
/// time spent in C0MIN, C2, and C8 (they sum to 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidencyProfile {
    /// Active (minimum-frequency) residency.
    pub c0min: Ratio,
    /// Display-refresh memory-access residency.
    pub c2: Ratio,
    /// Deep-idle residency.
    pub c8: Ratio,
}

impl ResidencyProfile {
    /// Creates a profile; the three residencies must sum to 1.
    ///
    /// # Errors
    ///
    /// Returns a [`pdn_units::UnitsError`] if any share is invalid or the
    /// shares do not sum to 1 (±1e-9).
    pub fn new(c0min: f64, c2: f64, c8: f64) -> Result<Self, pdn_units::UnitsError> {
        let sum = c0min + c2 + c8;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(pdn_units::UnitsError::OutOfRange {
                what: "residency sum",
                value: sum,
                range: "exactly 1",
            });
        }
        Ok(Self { c0min: Ratio::new(c0min)?, c2: Ratio::new(c2)?, c8: Ratio::new(c8)? })
    }

    /// Iterates `(state, residency)` pairs.
    pub fn entries(&self) -> [(PackageCState, Ratio); 3] {
        [
            (PackageCState::C0Min, self.c0min),
            (PackageCState::C2, self.c2),
            (PackageCState::C8, self.c8),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_playback_matches_section5_numbers() {
        let r = BatteryLifeWorkload::VideoPlayback.residency();
        assert!((r.c0min.get() - 0.10).abs() < 1e-12);
        assert!((r.c2.get() - 0.05).abs() < 1e-12);
        assert!((r.c8.get() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn c0min_residencies_match_section7() {
        let expected = [0.10, 0.20, 0.30, 0.40];
        for (wl, want) in BatteryLifeWorkload::ALL.iter().zip(expected) {
            assert!((wl.residency().c0min.get() - want).abs() < 1e-12, "{wl}");
        }
    }

    #[test]
    fn residencies_always_sum_to_one() {
        for wl in BatteryLifeWorkload::ALL {
            let r = wl.residency();
            let sum: f64 = r.entries().iter().map(|(_, share)| share.get()).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!(ResidencyProfile::new(0.5, 0.2, 0.2).is_err());
    }

    #[test]
    fn trace_reproduces_residency() {
        let t = BatteryLifeWorkload::WebBrowsing.as_trace(10);
        // C0MIN counts as active residency (§5: RC0MIN).
        assert!((t.active_residency().get() - 0.30).abs() < 1e-9);
        assert_eq!(t.intervals().len(), 30);
        assert_eq!(t.dominant_type(), None, "battery traces carry no compute type");
    }
}
