//! Composite workload mixes: multi-programmed SPEC pairs as runnable
//! traces, SYSmark-style office sessions, and HandBrake-style sustained
//! encodes — the remaining workload families of the paper's §4.1 trace
//! library.

use crate::batterylife::BatteryLifeWorkload;
use crate::spec::{multiprogrammed_pairs, SpecBenchmark};
use crate::trace::{Trace, TraceInterval, WorkloadType};
use pdn_proc::PackageCState;
use pdn_units::{ApplicationRatio, Ratio, Seconds};

/// A multi-programmed pair run as one multi-thread trace: both cores busy,
/// the pair's AR the mean of the members', its scalability the minimum
/// (the slower-scaling member gates the pair's throughput).
#[derive(Debug, Clone)]
pub struct MultiProgrammedMix {
    /// Display name (`"433.milc+416.gamess"`).
    pub name: String,
    /// Effective application ratio.
    pub ar: ApplicationRatio,
    /// Effective performance scalability.
    pub perf_scalability: Ratio,
}

impl MultiProgrammedMix {
    /// Builds the mix of two benchmarks.
    pub fn of(a: &SpecBenchmark, b: &SpecBenchmark) -> Self {
        let ar = ApplicationRatio::new(0.5 * (a.ar.get() + b.ar.get()))
            .expect("mean of valid ARs is valid");
        let scal = if a.perf_scalability <= b.perf_scalability {
            a.perf_scalability
        } else {
            b.perf_scalability
        };
        Self { name: format!("{}+{}", a.name, b.name), ar, perf_scalability: scal }
    }

    /// A steady multi-thread trace of the mix.
    pub fn as_trace(&self, duration: Seconds) -> Trace {
        Trace::new(
            self.name.clone(),
            vec![TraceInterval::active(duration, WorkloadType::MultiThread, self.ar)],
        )
    }
}

/// The multi-programmed trace library: every Fig. 7 pairing as a mix.
pub fn multiprogrammed_mixes() -> Vec<MultiProgrammedMix> {
    multiprogrammed_pairs().iter().map(|(_, a, b)| MultiProgrammedMix::of(a, b)).collect()
}

/// A SYSmark-style office-productivity session: bursts of single-thread
/// work (keystroke/interaction handling) separated by C-state idle — the
/// §4.1 "office productivity workloads" family.
pub fn office_productivity(minutes_of_bursts: usize) -> Trace {
    let mut intervals = Vec::with_capacity(minutes_of_bursts * 3);
    for i in 0..minutes_of_bursts {
        // Alternate light and heavier interactions.
        let ar = if i % 3 == 0 { 0.65 } else { 0.45 };
        intervals.push(TraceInterval::active(
            Seconds::from_millis(25.0),
            WorkloadType::SingleThread,
            ApplicationRatio::new(ar).expect("static AR is valid"),
        ));
        intervals.push(TraceInterval::idle(Seconds::from_millis(15.0), PackageCState::C2));
        intervals.push(TraceInterval::idle(Seconds::from_millis(60.0), PackageCState::C8));
    }
    Trace::new("sysmark-office", intervals)
}

/// A HandBrake-style sustained transcode: long multi-thread compute with
/// periodic I/O stalls — the §4.1 media-encode family.
pub fn video_transcode(seconds: usize) -> Trace {
    let mut intervals = Vec::with_capacity(seconds * 2);
    for _ in 0..seconds {
        intervals.push(TraceInterval::active(
            Seconds::from_millis(940.0),
            WorkloadType::MultiThread,
            ApplicationRatio::new(0.82).expect("static AR is valid"),
        ));
        intervals.push(TraceInterval::idle(Seconds::from_millis(60.0), PackageCState::C2));
    }
    Trace::new("handbrake-transcode", intervals)
}

/// A mixed session: transcode in the background of an office session with
/// occasional video breaks — a stress case for the FlexWatts predictor.
pub fn mixed_session() -> Trace {
    let mut t = Trace::new("mixed-session", vec![]);
    t.extend(&office_productivity(4));
    t.extend(&video_transcode(1));
    t.extend(&BatteryLifeWorkload::VideoPlayback.as_trace(30));
    t.extend(&office_productivity(2));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_inherit_the_weaker_scalability() {
        let mixes = multiprogrammed_mixes();
        assert_eq!(mixes.len(), 14);
        let first = &mixes[0];
        assert_eq!(first.name, "433.milc+416.gamess");
        // milc's 0.37 gates the pair.
        assert!((first.perf_scalability.get() - 0.37).abs() < 1e-12);
        // The AR is the mean of 0.52 and 0.80.
        assert!((first.ar.get() - 0.66).abs() < 1e-12);
    }

    #[test]
    fn mix_traces_are_multithreaded() {
        let t = multiprogrammed_mixes()[3].as_trace(Seconds::new(1.0));
        assert_eq!(t.dominant_type(), Some(WorkloadType::MultiThread));
    }

    #[test]
    fn office_session_is_mostly_idle() {
        let t = office_productivity(10);
        let res = t.active_residency().get();
        assert!((0.2..0.35).contains(&res), "office active residency {res}");
        assert_eq!(t.intervals().len(), 30);
    }

    #[test]
    fn transcode_is_mostly_busy() {
        let t = video_transcode(5);
        assert!(t.active_residency().get() > 0.9);
        assert!((t.total_duration().get() - 5.0).abs() < 1e-9);
        assert!(t.mean_active_ar().unwrap().get() > 0.8);
    }

    #[test]
    fn mixed_session_spans_phases() {
        let t = mixed_session();
        assert!(t.total_duration().get() > 1.0);
        // It contains active phases of more than one kind plus deep idle.
        assert!(t.intervals().iter().any(|i| i.phase.is_active()));
        assert!(t
            .intervals()
            .iter()
            .any(|i| matches!(i.phase, crate::trace::Phase::Idle(PackageCState::C8))));
    }
}
