//! Synthetic client-workload traces for the FlexWatts/PDNspot framework.
//!
//! The paper evaluates PDNs on ~5000 traces measured on real hardware:
//! SPEC CPU2006 and other CPU-intensive workloads, 3DMark06 graphics
//! workloads, and battery-life workloads (video playback, video
//! conferencing, web browsing, light gaming). Those traces are proprietary,
//! so this crate synthesises the closest equivalents (see DESIGN.md):
//! each profile carries exactly the quantities the PDN models consume —
//! workload type, application ratio (AR), per-benchmark performance
//! scalability, and power-state residencies.
//!
//! * [`spec`] — the 29 SPEC CPU2006 benchmarks of Fig. 7, with the figure's
//!   ascending performance-scalability ordering.
//! * [`graphics`] — 3DMark06-style graphics workloads (Fig. 8b).
//! * [`batterylife`] — the four battery-life workloads of Fig. 8c with the
//!   §5/§7 residency profiles.
//! * [`trace`] — the interval-trace representation consumed by the runtime
//!   simulator.
//! * [`synthetic`] — seeded random trace generation and power-virus traces.
//! * [`zoo`] — deterministic realistic trace scenarios (server bursts,
//!   frame-locked gaming, ML inference, thermally-throttled mobile).
//! * [`tracefile`] — the crash-tolerant chunked binary trace-file format
//!   and its bounded-memory streaming reader.
//!
//! # Examples
//!
//! ```
//! use pdn_workload::spec;
//!
//! let suite = spec::spec_cpu2006();
//! assert_eq!(suite.len(), 29);
//! // Fig. 7 sorts by performance scalability; 416.gamess scales best.
//! assert_eq!(suite.last().unwrap().name, "416.gamess");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batterylife;
pub mod graphics;
pub mod mixes;
pub mod spec;
pub mod synthetic;
pub mod trace;
pub mod tracefile;
pub mod zoo;

pub use batterylife::{BatteryLifeWorkload, ResidencyProfile};
pub use graphics::GraphicsBenchmark;
pub use mixes::MultiProgrammedMix;
pub use spec::SpecBenchmark;
pub use synthetic::TraceGenerator;
pub use trace::{Phase, Trace, TraceInterval, WorkloadType};
pub use tracefile::{
    ChunkDefect, DefectCounts, DefectKind, DefectPolicy, TraceFileError, TraceFileWriter,
    TraceReader,
};
pub use zoo::{zoo_mix, ZooScenario};
