//! SPEC CPU2006 benchmark profiles (Fig. 7 of the paper).
//!
//! The paper evaluates 29 SPEC CPU2006 benchmarks, sorted by their average
//! *performance scalability* — the relative performance gain per unit of
//! relative CPU-frequency gain (§3.3, footnote 5). We cannot run the
//! proprietary suite here, so each benchmark is represented by a synthetic
//! profile carrying the quantities the models consume: its scalability
//! (ascending in Fig. 7's order, from the memory-bound `433.milc` to the
//! compute-bound `416.gamess`) and an application ratio correlated with
//! computational intensity.

use crate::trace::{Trace, TraceInterval, WorkloadType};
use pdn_units::{ApplicationRatio, Ratio, Seconds};
use serde::{Deserialize, Serialize};

/// A SPEC CPU2006 benchmark profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecBenchmark {
    /// Benchmark name (e.g. `"416.gamess"`).
    pub name: &'static str,
    /// Performance scalability with CPU frequency (0–1; Fig. 7 right axis).
    pub perf_scalability: Ratio,
    /// Application ratio of the benchmark's dominant phase.
    pub ar: ApplicationRatio,
}

impl SpecBenchmark {
    /// Produces a steady-state single-thread trace of the benchmark
    /// (`duration` of continuous execution).
    pub fn as_trace(&self, duration: Seconds) -> Trace {
        Trace::new(
            self.name,
            vec![TraceInterval::active(duration, WorkloadType::SingleThread, self.ar)],
        )
    }

    /// A crude memory-intensity proxy: the complement of scalability
    /// (memory-bound benchmarks gain little from frequency).
    pub fn memory_intensity(&self) -> Ratio {
        self.perf_scalability.complement()
    }
}

/// `(name, performance scalability, application ratio)` in Fig. 7's
/// ascending-scalability order.
const SPEC_TABLE: [(&str, f64, f64); 29] = [
    ("433.milc", 0.37, 0.52),
    ("410.bwaves", 0.40, 0.55),
    ("459.GemsFDTD", 0.43, 0.57),
    ("450.soplex", 0.46, 0.51),
    ("434.zeusmp", 0.49, 0.58),
    ("437.leslie3d", 0.52, 0.60),
    ("471.omnetpp", 0.55, 0.48),
    ("429.mcf", 0.57, 0.45),
    ("481.wrf", 0.60, 0.62),
    ("403.gcc", 0.62, 0.55),
    ("470.lbm", 0.64, 0.66),
    ("436.cactusADM", 0.67, 0.64),
    ("482.sphinx3", 0.70, 0.63),
    ("462.libquantum", 0.72, 0.60),
    ("447.dealII", 0.75, 0.67),
    ("483.xalancbmk", 0.77, 0.59),
    ("454.calculix", 0.80, 0.70),
    ("473.astar", 0.82, 0.61),
    ("435.gromacs", 0.84, 0.72),
    ("401.bzip2", 0.86, 0.65),
    ("465.tonto", 0.88, 0.73),
    ("444.namd", 0.90, 0.75),
    ("458.sjeng", 0.92, 0.68),
    ("464.h264ref", 0.94, 0.78),
    ("445.gobmk", 0.95, 0.69),
    ("453.povray", 0.97, 0.74),
    ("400.perlbench", 0.98, 0.71),
    ("456.hmmer", 0.99, 0.77),
    ("416.gamess", 1.00, 0.80),
];

/// The 29 SPEC CPU2006 benchmarks in Fig. 7's ascending-scalability order.
///
/// # Examples
///
/// ```
/// use pdn_workload::spec::spec_cpu2006;
///
/// let suite = spec_cpu2006();
/// assert_eq!(suite[0].name, "433.milc");
/// assert!(suite[0].perf_scalability < suite[28].perf_scalability);
/// ```
pub fn spec_cpu2006() -> Vec<SpecBenchmark> {
    SPEC_TABLE
        .iter()
        .map(|&(name, scal, ar)| SpecBenchmark {
            name,
            perf_scalability: Ratio::new(scal).expect("static scalability is valid"),
            ar: ApplicationRatio::new(ar).expect("static AR is valid"),
        })
        .collect()
}

/// The highly scalable benchmark used to build the paper's performance
/// model (§3.3 uses `416.gamess`).
pub fn performance_model_benchmark() -> SpecBenchmark {
    spec_cpu2006().pop().expect("suite is nonempty")
}

/// Multi-programmed pairs: two single-thread benchmarks run together, one
/// per core (the paper's ~1200 multi-programmed traces). The pair's AR is
/// the mean of the members' and its scalability the minimum (the slower-
/// scaling member gates throughput).
pub fn multiprogrammed_pairs() -> Vec<(String, SpecBenchmark, SpecBenchmark)> {
    let suite = spec_cpu2006();
    let mut pairs = Vec::new();
    // Pair i with (28 − i): mixes memory-bound with compute-bound.
    for i in 0..suite.len() / 2 {
        let a = suite[i].clone();
        let b = suite[suite.len() - 1 - i].clone();
        pairs.push((format!("{}+{}", a.name, b.name), a, b));
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_29_unique_benchmarks() {
        let suite = spec_cpu2006();
        assert_eq!(suite.len(), 29);
        let mut names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 29);
    }

    #[test]
    fn scalability_is_strictly_ascending() {
        let suite = spec_cpu2006();
        for w in suite.windows(2) {
            assert!(
                w[0].perf_scalability < w[1].perf_scalability,
                "{} must scale worse than {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn ars_lie_in_the_validated_band() {
        // Fig. 4 validates over AR 40–80 %; the profiles stay inside it.
        for b in spec_cpu2006() {
            let ar = b.ar.get();
            assert!((0.40..=0.80).contains(&ar), "{} AR {ar}", b.name);
        }
    }

    #[test]
    fn gamess_is_the_performance_model_anchor() {
        assert_eq!(performance_model_benchmark().name, "416.gamess");
        assert_eq!(performance_model_benchmark().perf_scalability, Ratio::ONE);
    }

    #[test]
    fn memory_intensity_is_scalability_complement() {
        let milc = &spec_cpu2006()[0];
        assert!((milc.memory_intensity().get() - 0.63).abs() < 1e-12);
    }

    #[test]
    fn trace_conversion_is_single_threaded() {
        let b = &spec_cpu2006()[5];
        let t = b.as_trace(Seconds::new(1.0));
        assert_eq!(t.dominant_type(), Some(WorkloadType::SingleThread));
        assert_eq!(t.mean_active_ar(), Some(b.ar));
    }

    #[test]
    fn multiprogrammed_pairs_mix_scalabilities() {
        let pairs = multiprogrammed_pairs();
        assert_eq!(pairs.len(), 14);
        let (name, a, b) = &pairs[0];
        assert_eq!(name, "433.milc+416.gamess");
        assert!(a.perf_scalability < b.perf_scalability);
    }
}
