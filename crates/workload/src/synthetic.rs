//! Synthetic trace generation: power-virus traces and seeded random
//! workload mixes.
//!
//! The paper's trace library includes synthetic power-virus traces for each
//! domain, generated with tools like McPAT/SYMPO/Blizzard (§4.1). Here a
//! power virus is simply an AR = 1 trace. The random generator produces
//! phase-structured workloads (bursts of activity separated by idle
//! periods) used by the FlexWatts runtime simulator and by the validation
//! campaign; it is fully deterministic under a seed.

use crate::trace::{Trace, TraceInterval, WorkloadType};
use pdn_proc::PackageCState;
use pdn_units::{ApplicationRatio, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The power-virus trace: the most computationally intensive workload
/// possible (AR = 1), used to size guardbands and Iccmax.
pub fn power_virus(workload_type: WorkloadType, duration: Seconds) -> Trace {
    Trace::new(
        format!("power-virus-{workload_type}"),
        vec![TraceInterval::active(duration, workload_type, ApplicationRatio::POWER_VIRUS)],
    )
}

/// A fully idle trace in the given package C-state.
pub fn idle(state: PackageCState, duration: Seconds) -> Trace {
    Trace::new(format!("idle-{state}"), vec![TraceInterval::idle(duration, state)])
}

/// Evenly spaced AR sweep traces of one workload type — the Fig. 4 x-axis
/// (AR from 40 % to 80 %).
pub fn ar_sweep(workload_type: WorkloadType, ar_percents: &[f64], duration: Seconds) -> Vec<Trace> {
    ar_percents
        .iter()
        .map(|&pct| {
            let ar = ApplicationRatio::from_percent(pct).expect("sweep AR must be valid");
            Trace::new(
                format!("{workload_type}-ar{pct:.0}"),
                vec![TraceInterval::active(duration, workload_type, ar)],
            )
        })
        .collect()
}

/// Deterministic random generator of phase-structured workloads.
///
/// # Examples
///
/// ```
/// use pdn_units::Seconds;
/// use pdn_workload::TraceGenerator;
///
/// let trace = TraceGenerator::new(42).generate("mix", 100);
/// assert_eq!(trace.intervals().len(), 100);
/// // Deterministic under the seed:
/// assert_eq!(trace, TraceGenerator::new(42).generate("mix", 100));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceGenerator {
    seed: u64,
    /// Probability that an interval is active (vs idle).
    pub active_probability: f64,
    /// AR range for active intervals.
    pub ar_range: (f64, f64),
    /// Interval duration range in milliseconds.
    pub duration_range_ms: (f64, f64),
    /// Workload types to draw from for active intervals.
    pub types: Vec<WorkloadType>,
    /// Idle states to draw from for idle intervals.
    pub idle_states: Vec<PackageCState>,
}

impl TraceGenerator {
    /// Creates a generator with the default mixed-workload configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            active_probability: 0.6,
            ar_range: (0.40, 0.80),
            duration_range_ms: (5.0, 50.0),
            types: vec![
                WorkloadType::SingleThread,
                WorkloadType::MultiThread,
                WorkloadType::Graphics,
            ],
            idle_states: vec![PackageCState::C2, PackageCState::C6, PackageCState::C8],
        }
    }

    /// Restricts the generator to one workload type.
    pub fn with_type(mut self, t: WorkloadType) -> Self {
        self.types = vec![t];
        self
    }

    /// Sets the AR range for active intervals.
    pub fn with_ar_range(mut self, lo: f64, hi: f64) -> Self {
        self.ar_range = (lo, hi);
        self
    }

    /// Sets the probability that an interval is active.
    pub fn with_active_probability(mut self, p: f64) -> Self {
        self.active_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Generates a trace of `intervals` intervals.
    ///
    /// # Panics
    ///
    /// Panics if the generator was configured with empty type or idle-state
    /// lists, or an invalid AR range.
    pub fn generate(&self, name: &str, intervals: usize) -> Trace {
        assert!(!self.types.is_empty(), "need at least one workload type");
        assert!(!self.idle_states.is_empty(), "need at least one idle state");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(intervals);
        for _ in 0..intervals {
            let ms = rng.random_range(self.duration_range_ms.0..=self.duration_range_ms.1);
            let duration = Seconds::from_millis(ms);
            if rng.random_bool(self.active_probability) {
                let t = self.types[rng.random_range(0..self.types.len())];
                let ar_val = rng.random_range(self.ar_range.0..=self.ar_range.1);
                let ar = ApplicationRatio::new(ar_val).expect("configured AR range is valid");
                out.push(TraceInterval::active(duration, t, ar));
            } else {
                let s = self.idle_states[rng.random_range(0..self.idle_states.len())];
                out.push(TraceInterval::idle(duration, s));
            }
        }
        Trace::new(name, out)
    }

    /// Generates a family of `count` traces with distinct derived seeds —
    /// the shape of the paper's 200-trace validation subset (§4.3).
    pub fn generate_family(&self, prefix: &str, count: usize, intervals: usize) -> Vec<Trace> {
        (0..count)
            .map(|i| {
                let mut g = self.clone();
                g.seed = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
                g.generate(&format!("{prefix}-{i:03}"), intervals)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_virus_has_ar_one() {
        let t = power_virus(WorkloadType::MultiThread, Seconds::new(1.0));
        assert_eq!(t.mean_active_ar(), Some(ApplicationRatio::POWER_VIRUS));
    }

    #[test]
    fn ar_sweep_covers_requested_points() {
        let traces = ar_sweep(
            WorkloadType::SingleThread,
            &[40.0, 50.0, 60.0, 70.0, 80.0],
            Seconds::new(1.0),
        );
        assert_eq!(traces.len(), 5);
        assert!((traces[2].mean_active_ar().unwrap().get() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = TraceGenerator::new(7).generate("a", 50);
        let b = TraceGenerator::new(7).generate("b", 50);
        assert_eq!(a.intervals(), b.intervals());
        let c = TraceGenerator::new(8).generate("c", 50);
        assert_ne!(a.intervals(), c.intervals());
    }

    #[test]
    fn generator_respects_configuration() {
        let t = TraceGenerator::new(1)
            .with_type(WorkloadType::Graphics)
            .with_ar_range(0.5, 0.6)
            .with_active_probability(1.0)
            .generate("gfx", 40);
        assert!((t.active_residency().get() - 1.0).abs() < 1e-12);
        assert_eq!(t.dominant_type(), Some(WorkloadType::Graphics));
        let ar = t.mean_active_ar().unwrap().get();
        assert!((0.5..=0.6).contains(&ar));
    }

    #[test]
    fn family_members_differ() {
        let family = TraceGenerator::new(3).generate_family("val", 5, 20);
        assert_eq!(family.len(), 5);
        assert_ne!(family[0].intervals(), family[1].intervals());
        assert_eq!(family[0].name(), "val-000");
    }

    #[test]
    fn idle_trace_is_fully_idle() {
        let t = idle(PackageCState::C8, Seconds::new(2.0));
        assert_eq!(t.active_residency().get(), 0.0);
    }
}
