//! The FlexWatts PDN topology (Fig. 6 of the paper).
//!
//! FlexWatts modifies the baseline IVR PDN in two ways (§6): the SA and IO
//! domains move from on-die IVRs to dedicated off-chip VRs (they have low,
//! narrow power ranges, so one conversion stage is strictly better), and
//! the remaining four IVRs become [`crate::hybrid::HybridVr`]s that can
//! operate the whole compute group in either **IVR-Mode** or **LDO-Mode**.
//! Both modes share the same off-chip `V_IN` VR and the same routing, so
//! the load-line impedance is slightly higher than either pure PDN
//! (Table 2 extension: 1.4 mΩ vs 1.0/1.25 mΩ), which is why FlexWatts
//! trails the best static PDN by < 1 % at each end of the TDP range.

use crate::hybrid::HybridVr;
use pdn_proc::{DomainKind, DomainTable};
use pdn_units::{Amps, Volts, Watts};
use pdn_vr::{presets, BuckConverter, OperatingPoint, VoltageRegulator};
use pdnspot::etee::{
    board_vr_stage, load_line_domain_stage, load_line_stage, LossBreakdown, RowStage, StagedPoint,
    Stager,
};
use pdnspot::topology::{
    dedicated_rail_flow_with, pdn_memo_token, power_gate_impedance, OffchipRail,
};
use pdnspot::{DirectStager, ModelParams, Pdn, PdnError, PdnEvaluation, PdnKind, Scenario};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two operating modes of the FlexWatts hybrid PDN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PdnMode {
    /// Two-stage conversion through the on-die buck personality
    /// (`V_IN` ≈ 1.8 V). Best at high power.
    IvrMode,
    /// Single-stage conversion: `V_IN` at the maximum compute voltage, the
    /// hybrid VRs in LDO/bypass personality. Best at low power.
    LdoMode,
}

impl PdnMode {
    /// Both modes.
    pub const ALL: [PdnMode; 2] = [PdnMode::IvrMode, PdnMode::LdoMode];
}

impl fmt::Display for PdnMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PdnMode::IvrMode => "IVR-Mode",
            PdnMode::LdoMode => "LDO-Mode",
        })
    }
}

/// The FlexWatts hybrid PDN, evaluated in one fixed mode.
///
/// The runtime ([`crate::runtime::FlexWattsRuntime`]) holds one instance
/// per mode and lets the predictor choose between them; a fixed-mode
/// instance is also exactly what the Fig. 7/8 comparisons need.
///
/// # Examples
///
/// ```
/// use flexwatts::{FlexWattsPdn, PdnMode};
/// use pdnspot::{ModelParams, Pdn};
///
/// let pdn = FlexWattsPdn::new(ModelParams::paper_defaults(), PdnMode::LdoMode);
/// assert_eq!(pdn.kind(), pdnspot::PdnKind::FlexWatts);
/// assert_eq!(pdn.mode(), PdnMode::LdoMode);
/// ```
#[derive(Debug)]
pub struct FlexWattsPdn {
    params: ModelParams,
    mode: PdnMode,
    vin_vr: BuckConverter,
    sa_vr: BuckConverter,
    io_vr: BuckConverter,
    hybrids: DomainTable<Option<HybridVr>>,
}

impl FlexWattsPdn {
    /// Builds the FlexWatts PDN in the given mode.
    pub fn new(params: ModelParams, mode: PdnMode) -> Self {
        let hybrids = DomainTable::from_fn(|k| {
            k.is_wide_range().then(|| {
                let mut vr = HybridVr::new(format!("HVR_{}", k.rail_name()));
                vr.set_mode(mode);
                vr
            })
        });
        Self {
            params,
            mode,
            vin_vr: presets::flexwatts_vin_vr(),
            sa_vr: presets::sa_board_vr(),
            io_vr: presets::io_board_vr(),
            hybrids,
        }
    }

    /// The mode this instance evaluates.
    pub fn mode(&self) -> PdnMode {
        self.mode
    }

    /// The tolerance band of the active mode. The hybrid circuits inherit
    /// the IVR's TOB in IVR-Mode and the LDO's in LDO-Mode.
    fn tob(&self) -> Volts {
        match self.mode {
            PdnMode::IvrMode => self.params.ivr_tob.total(),
            PdnMode::LdoMode => self.params.ldo_tob.total(),
        }
    }

    /// [`Pdn::evaluate`] with the PDN-independent stages (guardband, gate,
    /// virus headroom) routed through a [`Stager`], so batch sweeps share
    /// them with every other PDN evaluated at the same lattice point.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the active mode's flow.
    pub fn evaluate_with(
        &self,
        scenario: &Scenario,
        stager: &impl Stager,
    ) -> Result<PdnEvaluation, PdnError> {
        match self.mode {
            PdnMode::IvrMode => self.evaluate_ivr_mode(scenario, stager),
            PdnMode::LdoMode => self.evaluate_ldo_mode(scenario, stager),
        }
    }

    fn evaluate_ivr_mode(
        &self,
        scenario: &Scenario,
        stager: &impl Stager,
    ) -> Result<PdnEvaluation, PdnError> {
        let p = &self.params;
        let tob = self.tob();
        let mut breakdown = LossBreakdown::default();
        let mut rails = Vec::new();
        let mut p_batt = Watts::ZERO;
        let mut chip_current = Amps::ZERO;

        // Compute domains: hybrid VRs in buck personality fed at 1.8 V.
        let mut p_in = Watts::ZERO;
        for &kind in &DomainKind::WIDE_RANGE {
            let load = scenario.load(kind);
            if !load.powered || load.nominal_power.get() <= 0.0 {
                continue;
            }
            let gb = stager.guardband(kind, load, tob, p.leakage_exponent);
            breakdown.other += gb.power - load.nominal_power;
            let iout = gb.power / gb.voltage;
            let op = OperatingPoint::new(p.vin_level, gb.voltage, iout);
            let hvr = self.hybrids.get(kind).as_ref().expect("wide-range domains carry a HVR");
            let eta = hvr.efficiency(op)?;
            let pin_d = gb.power / eta;
            breakdown.vr_loss += pin_d - gb.power;
            p_in += pin_d;
        }
        if p_in.get() > 0.0 {
            // The shared-resource load line (1.4 mΩ > the IVR PDN's 1.0).
            let step = load_line_stage(p_in, p.vin_level, scenario.ar, p.flexwatts_loadlines.vin);
            breakdown.conduction_compute += step.extra;
            chip_current += p_in / p.vin_level;
            let (pin, rail) = board_vr_stage(
                &self.vin_vr,
                p.supply_voltage,
                step.v_ll,
                step.p_ll,
                p.board_lightload_cap,
            )?;
            breakdown.vr_loss += pin - step.p_ll;
            p_batt += pin;
            rails.push(rail);
        }

        self.add_sa_io(
            scenario,
            stager,
            &mut breakdown,
            &mut rails,
            &mut p_batt,
            &mut chip_current,
        )?;
        PdnEvaluation::assemble(
            scenario.total_nominal_power(),
            p_batt,
            breakdown,
            chip_current,
            rails,
        )
    }

    fn evaluate_ldo_mode(
        &self,
        scenario: &Scenario,
        stager: &impl Stager,
    ) -> Result<PdnEvaluation, PdnError> {
        let p = &self.params;
        let tob = self.tob();
        let mut breakdown = LossBreakdown::default();
        let mut rails = Vec::new();
        let mut p_batt = Watts::ZERO;
        let mut chip_current = Amps::ZERO;

        let vin_rail = scenario.max_voltage_among(&DomainKind::WIDE_RANGE).map(|v| v + tob);
        let mut p_in = Watts::ZERO;
        let mut fl_weighted = 0.0;
        if let Some(vin_rail) = vin_rail {
            for &kind in &DomainKind::WIDE_RANGE {
                let load = scenario.load(kind);
                if !load.powered || load.nominal_power.get() <= 0.0 {
                    continue;
                }
                let gb = stager.guardband(kind, load, tob, p.leakage_exponent);
                breakdown.other += gb.power - load.nominal_power;
                let iout = gb.power / gb.voltage;
                let op = OperatingPoint::new(vin_rail, gb.voltage, iout);
                let hvr = self.hybrids.get(kind).as_ref().expect("wide-range domains carry a HVR");
                let eta = hvr.efficiency(op)?;
                let pin_d = gb.power / eta;
                breakdown.vr_loss += pin_d - gb.power;
                fl_weighted += load.leakage_fraction.get() * pin_d.get();
                p_in += pin_d;
            }
            if p_in.get() > 0.0 {
                let fl = pdn_units::Ratio::new(fl_weighted / p_in.get())
                    .expect("weighted mean of valid fractions");
                let step = load_line_domain_stage(
                    p_in,
                    vin_rail,
                    stager.rail_virus_power(scenario, &DomainKind::WIDE_RANGE, p_in),
                    p.flexwatts_loadlines.vin,
                    fl,
                    p.leakage_exponent,
                );
                breakdown.conduction_compute += step.extra;
                chip_current += p_in / vin_rail;
                let (pin, rail) = board_vr_stage(
                    &self.vin_vr,
                    p.supply_voltage,
                    step.v_ll,
                    step.p_ll,
                    p.board_lightload_cap,
                )?;
                breakdown.vr_loss += pin - step.p_ll;
                p_batt += pin;
                rails.push(rail);
            }
        }

        self.add_sa_io(
            scenario,
            stager,
            &mut breakdown,
            &mut rails,
            &mut p_batt,
            &mut chip_current,
        )?;
        PdnEvaluation::assemble(
            scenario.total_nominal_power(),
            p_batt,
            breakdown,
            chip_current,
            rails,
        )
    }

    /// The dedicated SA/IO board rails FlexWatts keeps in both modes.
    fn add_sa_io(
        &self,
        scenario: &Scenario,
        stager: &impl Stager,
        breakdown: &mut LossBreakdown,
        rails: &mut Vec<pdnspot::RailReport>,
        p_batt: &mut Watts,
        chip_current: &mut Amps,
    ) -> Result<(), PdnError> {
        let p = &self.params;
        for (kind, r_ll, vr) in [
            (DomainKind::Sa, p.flexwatts_loadlines.sa, &self.sa_vr),
            (DomainKind::Io, p.flexwatts_loadlines.io, &self.io_vr),
        ] {
            let (pin, overhead, conduction, vr_loss, rail) = dedicated_rail_flow_with(
                scenario,
                kind,
                self.tob(),
                power_gate_impedance(),
                r_ll,
                vr,
                p,
                stager,
            )?;
            if pin.get() > 0.0 {
                breakdown.other += overhead;
                breakdown.conduction_sa_io += conduction;
                breakdown.vr_loss += vr_loss;
                *chip_current += rail.current;
                *p_batt += pin;
                rails.push(rail);
            }
        }
        Ok(())
    }
}

impl Pdn for FlexWattsPdn {
    fn kind(&self) -> PdnKind {
        PdnKind::FlexWatts
    }

    fn params(&self) -> &ModelParams {
        &self.params
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, &DirectStager)
    }

    fn evaluate_staged(
        &self,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        self.evaluate_with(scenario, staged)
    }

    fn evaluate_row(
        &self,
        scenarios: &[Scenario],
        row: &RowStage,
    ) -> Vec<Result<PdnEvaluation, PdnError>> {
        scenarios.iter().map(|s| self.evaluate_with(s, row)).collect()
    }

    fn memo_token(&self) -> Option<u64> {
        let flavor = match self.mode {
            PdnMode::IvrMode => 0,
            PdnMode::LdoMode => 1,
        };
        Some(pdn_memo_token(PdnKind::FlexWatts, flavor, &self.params))
    }

    /// FlexWatts's off-chip rails carry the **IVR-Mode rating** (§7: "the
    /// shared VR is designed with a maximum-current level similar to that
    /// of IVR"), which is what the §3.2 BOM/area model prices. In LDO-Mode
    /// the same physical rail delivers more *output* amps at its much
    /// lower output voltage — the buck's duty-cycle headroom means the
    /// switch/input-side rating is unchanged — up to the limit returned by
    /// [`FlexWattsPdn::vin_protection_limit`], beyond which the PMU's
    /// maximum-current protection forces IVR-Mode.
    fn offchip_rails(&self, soc: &pdn_proc::SocSpec) -> Result<Vec<OffchipRail>, PdnError> {
        let mut merged: std::collections::BTreeMap<String, OffchipRail> =
            std::collections::BTreeMap::new();
        let pdn = FlexWattsPdn::new(self.params.clone(), PdnMode::IvrMode);
        for wl in [pdn_workload::WorkloadType::MultiThread, pdn_workload::WorkloadType::Graphics] {
            let virus = Scenario::power_virus_at_tdp(soc, wl)?;
            let eval = pdn.evaluate(&virus)?;
            for rail in eval.rails {
                let entry = merged.entry(rail.name.clone()).or_insert_with(|| OffchipRail {
                    name: rail.name.clone(),
                    iccmax: Amps::ZERO,
                    voltage: rail.voltage,
                });
                if rail.current > entry.iccmax {
                    entry.iccmax = rail.current;
                    entry.voltage = rail.voltage;
                }
            }
        }
        const DESIGN_MARGIN: f64 = 1.1;
        Ok(merged
            .into_values()
            .map(|mut r| {
                r.iccmax = r.iccmax * DESIGN_MARGIN;
                r
            })
            .collect())
    }
}

impl FlexWattsPdn {
    /// The maximum *output* current the shared `V_IN` rail can deliver in
    /// LDO-Mode: the LDO-Mode power-virus current at this TDP, capped at
    /// the mode-crossover power (above the crossover the predictor — and,
    /// as a backstop, the maximum-current protection — runs IVR-Mode, so
    /// the rail never has to deliver the full high-TDP virus at a low
    /// output voltage).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the sizing scenarios.
    pub fn vin_protection_limit(&self, soc: &pdn_proc::SocSpec) -> Result<Amps, PdnError> {
        let sizing_soc;
        let soc_ref = if soc.tdp.get() > MODE_CROSSOVER_TDP {
            sizing_soc = pdn_proc::client_soc(Watts::new(MODE_CROSSOVER_TDP));
            &sizing_soc
        } else {
            soc
        };
        let ldo = FlexWattsPdn::new(self.params.clone(), PdnMode::LdoMode);
        let mut worst = Amps::ZERO;
        for wl in [pdn_workload::WorkloadType::MultiThread, pdn_workload::WorkloadType::Graphics] {
            let virus = Scenario::power_virus_at_tdp(soc_ref, wl)?;
            let eval = ldo.evaluate(&virus)?;
            if let Some(rail) = eval.rails.iter().find(|r| r.name == "V_IN") {
                worst = worst.max(rail.current);
            }
        }
        const DESIGN_MARGIN: f64 = 1.1;
        Ok(worst * DESIGN_MARGIN)
    }
}

/// The TDP around which the predictor's preferred mode flips for SPEC-like
/// workloads (§7.1: below 18 W FlexWatts mainly runs LDO-Mode, above it
/// IVR-Mode).
pub const MODE_CROSSOVER_TDP: f64 = 18.0;

/// FlexWatts with the steady-state mode choice applied: every evaluation
/// runs both modes and reports the better one — the behaviour a converged
/// predictor exhibits on a steady workload, and the configuration the
/// Fig. 7/8 comparisons plot.
#[derive(Debug)]
pub struct FlexWattsAuto {
    ivr: FlexWattsPdn,
    ldo: FlexWattsPdn,
}

impl FlexWattsAuto {
    /// Builds the auto-mode FlexWatts PDN.
    pub fn new(params: ModelParams) -> Self {
        Self {
            ivr: FlexWattsPdn::new(params.clone(), PdnMode::IvrMode),
            ldo: FlexWattsPdn::new(params, PdnMode::LdoMode),
        }
    }

    /// The mode the steady-state predictor would choose for a scenario.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from either mode.
    pub fn best_mode(&self, scenario: &Scenario) -> Result<PdnMode, PdnError> {
        let ivr = self.ivr.evaluate(scenario)?;
        let ldo = self.ldo.evaluate(scenario)?;
        Ok(if ivr.etee >= ldo.etee { PdnMode::IvrMode } else { PdnMode::LdoMode })
    }
}

impl Pdn for FlexWattsAuto {
    fn kind(&self) -> PdnKind {
        PdnKind::FlexWatts
    }

    fn params(&self) -> &ModelParams {
        self.ivr.params()
    }

    fn evaluate(&self, scenario: &Scenario) -> Result<PdnEvaluation, PdnError> {
        let ivr = self.ivr.evaluate(scenario)?;
        let ldo = self.ldo.evaluate(scenario)?;
        Ok(if ivr.etee >= ldo.etee { ivr } else { ldo })
    }

    fn evaluate_staged(
        &self,
        scenario: &Scenario,
        staged: &StagedPoint,
    ) -> Result<PdnEvaluation, PdnError> {
        let ivr = self.ivr.evaluate_with(scenario, staged)?;
        let ldo = self.ldo.evaluate_with(scenario, staged)?;
        Ok(if ivr.etee >= ldo.etee { ivr } else { ldo })
    }

    fn memo_token(&self) -> Option<u64> {
        // Flavor 255 keeps the better-of-both-modes result distinct from
        // either fixed mode's cache entries.
        Some(pdn_memo_token(PdnKind::FlexWatts, 255, self.ivr.params()))
    }

    fn offchip_rails(&self, soc: &pdn_proc::SocSpec) -> Result<Vec<OffchipRail>, PdnError> {
        // The fixed-mode implementation already merges both modes.
        self.ivr.offchip_rails(soc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_proc::{client_soc, PackageCState};
    use pdn_units::ApplicationRatio;
    use pdn_workload::WorkloadType;
    use pdnspot::{IvrPdn, LdoPdn, MbvrPdn};

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    fn scenario(tdp: f64, wl: WorkloadType, a: f64) -> Scenario {
        let soc = client_soc(Watts::new(tdp));
        Scenario::active_fixed_tdp_frequency(&soc, wl, ar(a)).unwrap()
    }

    #[test]
    fn ldo_mode_wins_at_low_tdp_ivr_mode_at_high_tdp() {
        let params = ModelParams::paper_defaults();
        let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
        let ivr = FlexWattsPdn::new(params, PdnMode::IvrMode);
        let low = scenario(4.0, WorkloadType::MultiThread, 0.6);
        let high = scenario(50.0, WorkloadType::MultiThread, 0.6);
        assert!(
            ldo.evaluate(&low).unwrap().etee.get() > ivr.evaluate(&low).unwrap().etee.get(),
            "LDO-Mode must win at 4 W"
        );
        assert!(
            ivr.evaluate(&high).unwrap().etee.get() > ldo.evaluate(&high).unwrap().etee.get(),
            "IVR-Mode must win at 50 W"
        );
    }

    #[test]
    fn flexwatts_trails_the_best_static_pdn_by_under_one_point() {
        // §7.1: < 1 % worse than MBVR/LDO at low TDP (higher load line),
        // < 1 % worse than IVR at high TDP.
        let params = ModelParams::paper_defaults();
        let fw_ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
        let fw_ivr = FlexWattsPdn::new(params.clone(), PdnMode::IvrMode);
        let pure_ldo = LdoPdn::new(params.clone());
        let pure_ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);

        let low = scenario(4.0, WorkloadType::SingleThread, 0.6);
        let best_low = pure_ldo
            .evaluate(&low)
            .unwrap()
            .etee
            .get()
            .max(mbvr.evaluate(&low).unwrap().etee.get());
        let fw_low = fw_ldo.evaluate(&low).unwrap().etee.get();
        assert!(fw_low > best_low - 0.012, "4 W: FlexWatts {fw_low:.3} vs best {best_low:.3}");
        assert!(fw_low <= best_low + 1e-9, "sharing cannot beat the dedicated design");

        let high = scenario(50.0, WorkloadType::MultiThread, 0.6);
        let best_high = pure_ivr.evaluate(&high).unwrap().etee.get();
        let fw_high = fw_ivr.evaluate(&high).unwrap().etee.get();
        assert!(fw_high > best_high - 0.012, "50 W: FlexWatts {fw_high:.3} vs IVR {best_high:.3}");
    }

    #[test]
    fn flexwatts_beats_ivr_substantially_at_4w() {
        // The headline: ≈ +8 % ETEE over IVR at 4 W, which the §3.3
        // performance model turns into the +22 % SPEC gain.
        let params = ModelParams::paper_defaults();
        let fw = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
        let ivr = IvrPdn::new(params);
        let s = scenario(4.0, WorkloadType::SingleThread, 0.6);
        let gap = fw.evaluate(&s).unwrap().etee.get() - ivr.evaluate(&s).unwrap().etee.get();
        assert!(gap > 0.05, "4 W ETEE gap over IVR = {gap:.3}");
    }

    #[test]
    fn battery_life_states_prefer_ldo_mode() {
        let params = ModelParams::paper_defaults();
        let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
        let ivr = FlexWattsPdn::new(params, PdnMode::IvrMode);
        let soc = client_soc(Watts::new(18.0));
        for state in [PackageCState::C0Min, PackageCState::C2, PackageCState::C8] {
            let s = Scenario::idle(&soc, state);
            assert!(
                ldo.evaluate(&s).unwrap().etee.get() >= ivr.evaluate(&s).unwrap().etee.get(),
                "{state}: LDO-Mode must not lose in idle"
            );
        }
    }

    #[test]
    fn three_offchip_rails_sized_like_ivr() {
        let params = ModelParams::paper_defaults();
        let fw = FlexWattsPdn::new(params.clone(), PdnMode::IvrMode);
        let ivr = IvrPdn::new(params);
        let soc = client_soc(Watts::new(50.0));
        let fw_rails = fw.offchip_rails(&soc).unwrap();
        assert_eq!(fw_rails.len(), 3, "V_IN + V_SA + V_IO");
        let fw_vin = fw_rails.iter().find(|r| r.name == "V_IN").unwrap();
        let ivr_vin = &ivr.offchip_rails(&soc).unwrap()[0];
        let ratio = fw_vin.iccmax.get() / ivr_vin.iccmax.get();
        assert!(
            ratio < 1.5,
            "§7: the shared V_IN is sized near the IVR PDN's level, got {ratio:.2}×"
        );
    }

    #[test]
    fn power_is_conserved_in_both_modes() {
        let params = ModelParams::paper_defaults();
        for mode in PdnMode::ALL {
            let pdn = FlexWattsPdn::new(params.clone(), mode);
            let s = scenario(18.0, WorkloadType::Graphics, 0.7);
            let e = pdn.evaluate(&s).unwrap();
            let accounted = e.nominal_power + e.breakdown.total();
            assert!((accounted.get() - e.input_power.get()).abs() < 1e-6, "{mode}");
        }
    }

    #[test]
    fn memo_tokens_separate_modes_params_and_auto() {
        let params = ModelParams::paper_defaults();
        let ivr = FlexWattsPdn::new(params.clone(), PdnMode::IvrMode);
        let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
        let auto = FlexWattsAuto::new(params.clone());
        let tokens =
            [ivr.memo_token().unwrap(), ldo.memo_token().unwrap(), auto.memo_token().unwrap()];
        for (i, a) in tokens.iter().enumerate() {
            for b in &tokens[i + 1..] {
                assert_ne!(a, b, "modes must never share cache entries");
            }
        }
        let mut other = params;
        other.leakage_exponent += 0.25;
        let perturbed = FlexWattsPdn::new(other, PdnMode::IvrMode);
        assert_ne!(perturbed.memo_token(), ivr.memo_token(), "params are part of the identity");
    }

    #[test]
    fn staged_evaluation_is_bit_identical_to_direct() {
        let params = ModelParams::paper_defaults();
        let pdns: [&dyn Pdn; 3] = [
            &FlexWattsPdn::new(params.clone(), PdnMode::IvrMode),
            &FlexWattsPdn::new(params.clone(), PdnMode::LdoMode),
            &FlexWattsAuto::new(params),
        ];
        let soc = client_soc(Watts::new(18.0));
        let scenarios = [
            scenario(4.0, WorkloadType::SingleThread, 0.6),
            scenario(18.0, WorkloadType::MultiThread, 0.8),
            scenario(50.0, WorkloadType::Graphics, 0.4),
            Scenario::idle(&soc, PackageCState::C2),
        ];
        for s in &scenarios {
            // One shared staging cache per "lattice point", as the batch
            // engine uses it: every PDN reuses the same partial stages.
            let staged = StagedPoint::new();
            for pdn in pdns {
                let direct = pdn.evaluate(s).unwrap();
                let shared = pdn.evaluate_staged(s, &staged).unwrap();
                assert_eq!(
                    direct.etee.get().to_bits(),
                    shared.etee.get().to_bits(),
                    "staging must not change a single bit"
                );
                assert_eq!(direct.input_power.get().to_bits(), shared.input_power.get().to_bits());
            }
        }
    }

    #[test]
    fn mode_display_and_kind() {
        assert_eq!(PdnMode::IvrMode.to_string(), "IVR-Mode");
        assert_eq!(PdnMode::LdoMode.to_string(), "LDO-Mode");
        let pdn = FlexWattsPdn::new(ModelParams::paper_defaults(), PdnMode::IvrMode);
        assert_eq!(pdn.kind(), PdnKind::FlexWatts);
        assert_eq!(pdn.kind().to_string(), "FlexWatts");
    }
}
