//! The FlexWatts mode-prediction algorithm (Algorithm 1 of the paper).
//!
//! The PMU firmware stores two ETEE curve sets — one per PDN mode — each a
//! multidimensional table over (TDP, workload type, AR) plus one curve for
//! the package power states. Every evaluation interval (e.g. 10 ms) the
//! PMU estimates the four inputs at runtime (§6) and selects the mode with
//! the higher predicted ETEE. A small hysteresis margin suppresses mode
//! thrashing near the crossover.

use crate::topology::{FlexWattsPdn, PdnMode};
use pdn_pmu::firmware::{FirmwareError, FirmwareImage};
use pdn_pmu::EteeCurveSet;
use pdn_proc::{client_soc, PackageCState};
use pdn_units::{ApplicationRatio, Efficiency, Seconds, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{MemoCache, ModelParams, PdnError};

/// The runtime-estimated inputs of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorInputs {
    /// The configured TDP (cTDP-aware; available to PMU firmware).
    pub tdp: Watts,
    /// The activity-sensor AR estimate.
    pub ar: ApplicationRatio,
    /// The workload type classified from domain power states.
    pub workload_type: WorkloadType,
    /// The current package power state (`None` = active C0).
    pub power_state: Option<PackageCState>,
}

/// The trained mode predictor.
///
/// # Examples
///
/// ```no_run
/// use flexwatts::{ModePredictor, PdnMode, PredictorInputs};
/// use pdn_units::{ApplicationRatio, Watts};
/// use pdn_workload::WorkloadType;
/// use pdnspot::ModelParams;
///
/// let predictor = ModePredictor::train(
///     &ModelParams::paper_defaults(),
///     &[4.0, 10.0, 18.0, 25.0, 50.0],
///     &[0.4, 0.6, 0.8],
/// )?;
/// let mode = predictor.predict(PredictorInputs {
///     tdp: Watts::new(4.0),
///     ar: ApplicationRatio::new(0.6)?,
///     workload_type: WorkloadType::SingleThread,
///     power_state: None,
/// });
/// assert_eq!(mode, PdnMode::LdoMode);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModePredictor {
    ivr_tables: EteeCurveSet,
    ldo_tables: EteeCurveSet,
    /// Minimum predicted ETEE advantage before leaving the current mode.
    hysteresis: f64,
    /// How often the runtime re-evaluates the prediction (§6: e.g. 10 ms).
    evaluation_interval: Seconds,
}

impl ModePredictor {
    /// The paper's evaluation interval.
    pub const DEFAULT_INTERVAL: Seconds = Seconds::new(0.010);

    /// Trains the predictor by tabulating both FlexWatts modes with
    /// PDNspot over the given (TDP, AR) lattice — the §6 "two sets of ETEE
    /// curves inside the PMU firmware".
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors.
    pub fn train(
        params: &ModelParams,
        tdp_axis: &[f64],
        ar_axis: &[f64],
    ) -> Result<Self, PdnError> {
        Self::train_with(params, tdp_axis, ar_axis, None)
    }

    /// [`ModePredictor::train`] with an optional shared [`MemoCache`].
    /// Both mode tabulations run through the same cache (each mode keys
    /// its own entries via its [`pdnspot::Pdn::memo_token`]), and a caller
    /// retraining over overlapping lattices — resolution ablations, fault
    /// campaigns — reuses every previously evaluated point. The trained
    /// tables are bit-identical with or without the cache.
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors.
    pub fn train_with(
        params: &ModelParams,
        tdp_axis: &[f64],
        ar_axis: &[f64],
        memo: Option<&MemoCache>,
    ) -> Result<Self, PdnError> {
        let ivr = FlexWattsPdn::new(params.clone(), PdnMode::IvrMode);
        let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
        let local = MemoCache::new();
        let memo = memo.unwrap_or(&local);
        Ok(Self {
            ivr_tables: EteeCurveSet::tabulate_with(
                &ivr,
                tdp_axis,
                ar_axis,
                client_soc,
                Some(memo),
            )?,
            ldo_tables: EteeCurveSet::tabulate_with(
                &ldo,
                tdp_axis,
                ar_axis,
                client_soc,
                Some(memo),
            )?,
            hysteresis: 0.004,
            evaluation_interval: Self::DEFAULT_INTERVAL,
        })
    }

    /// Sets the hysteresis margin (predicted-ETEE advantage required to
    /// switch away from the current mode).
    pub fn with_hysteresis(mut self, margin: f64) -> Self {
        self.hysteresis = margin.max(0.0);
        self
    }

    /// Sets the evaluation interval.
    pub fn with_evaluation_interval(mut self, interval: Seconds) -> Self {
        self.evaluation_interval = interval;
        self
    }

    /// The evaluation interval.
    pub fn evaluation_interval(&self) -> Seconds {
        self.evaluation_interval
    }

    /// Total firmware table entries across both curve sets (the ablation
    /// metric for table resolution).
    pub fn table_entries(&self) -> usize {
        self.ivr_tables.table_entries() + self.ldo_tables.table_entries()
    }

    /// Serialises both curve sets into flashable firmware images
    /// (IVR-Mode tables first) — the §6 "two sets of ETEE curves inside
    /// the PMU firmware" as actual bytes.
    pub fn firmware_images(&self) -> [FirmwareImage; 2] {
        [FirmwareImage::build(&self.ivr_tables), FirmwareImage::build(&self.ldo_tables)]
    }

    /// Reconstructs a predictor from flashed firmware images (the boot
    /// path of a production PMU).
    ///
    /// # Errors
    ///
    /// Returns a [`FirmwareError`] if either image is malformed.
    pub fn from_firmware(ivr_image: &[u8], ldo_image: &[u8]) -> Result<Self, FirmwareError> {
        Ok(Self {
            ivr_tables: FirmwareImage::parse(ivr_image)?,
            ldo_tables: FirmwareImage::parse(ldo_image)?,
            hysteresis: 0.004,
            evaluation_interval: Self::DEFAULT_INTERVAL,
        })
    }

    /// Predicted ETEE of one mode for the given inputs.
    pub fn predicted_etee(&self, mode: PdnMode, inputs: PredictorInputs) -> Efficiency {
        let tables = match mode {
            PdnMode::IvrMode => &self.ivr_tables,
            PdnMode::LdoMode => &self.ldo_tables,
        };
        let lookup = match inputs.power_state {
            Some(state) => tables.lookup_idle(state, inputs.tdp),
            None => tables.lookup_active(inputs.workload_type, inputs.tdp, inputs.ar),
        };
        lookup.expect("tabulated ETEE values are valid efficiencies")
    }

    /// Algorithm 1: returns the mode with the higher predicted ETEE.
    pub fn predict(&self, inputs: PredictorInputs) -> PdnMode {
        let ivr = self.predicted_etee(PdnMode::IvrMode, inputs);
        let ldo = self.predicted_etee(PdnMode::LdoMode, inputs);
        if ivr >= ldo {
            PdnMode::IvrMode
        } else {
            PdnMode::LdoMode
        }
    }

    /// Algorithm 1 with hysteresis: only leaves `current` when the other
    /// mode's predicted advantage exceeds the margin (mode switches cost
    /// ≈ 94 µs of idleness, §6).
    pub fn predict_with_hysteresis(&self, inputs: PredictorInputs, current: PdnMode) -> PdnMode {
        let ivr = self.predicted_etee(PdnMode::IvrMode, inputs).get();
        let ldo = self.predicted_etee(PdnMode::LdoMode, inputs).get();
        let (current_etee, other, other_etee) = match current {
            PdnMode::IvrMode => (ivr, PdnMode::LdoMode, ldo),
            PdnMode::LdoMode => (ldo, PdnMode::IvrMode, ivr),
        };
        if other_etee > current_etee + self.hysteresis {
            other
        } else {
            current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdnspot::{Pdn, Scenario};

    fn trained() -> ModePredictor {
        ModePredictor::train(
            &ModelParams::paper_defaults(),
            &[4.0, 10.0, 18.0, 25.0, 36.0, 50.0],
            &[0.4, 0.5, 0.6, 0.7, 0.8],
        )
        .unwrap()
    }

    fn inputs(tdp: f64, ar: f64, wl: WorkloadType) -> PredictorInputs {
        PredictorInputs {
            tdp: Watts::new(tdp),
            ar: ApplicationRatio::new(ar).unwrap(),
            workload_type: wl,
            power_state: None,
        }
    }

    #[test]
    fn low_tdp_selects_ldo_mode_high_tdp_ivr_mode() {
        let p = trained();
        assert_eq!(p.predict(inputs(4.0, 0.6, WorkloadType::SingleThread)), PdnMode::LdoMode);
        assert_eq!(p.predict(inputs(50.0, 0.6, WorkloadType::MultiThread)), PdnMode::IvrMode);
    }

    #[test]
    fn idle_states_select_ldo_mode() {
        let p = trained();
        for state in [PackageCState::C2, PackageCState::C8] {
            let mut i = inputs(25.0, 0.6, WorkloadType::BatteryLife);
            i.power_state = Some(state);
            assert_eq!(p.predict(i), PdnMode::LdoMode, "{state}");
        }
    }

    #[test]
    fn predictions_match_the_oracle_between_knots() {
        // The predictor interpolates its tables; off-knot predictions must
        // agree with brute-force PDNspot evaluation almost everywhere.
        let p = trained();
        let params = ModelParams::paper_defaults();
        let ivr = FlexWattsPdn::new(params.clone(), PdnMode::IvrMode);
        let ldo = FlexWattsPdn::new(params, PdnMode::LdoMode);
        let mut agree = 0;
        let mut total = 0;
        for tdp in [6.0, 14.0, 21.0, 30.0, 45.0] {
            let soc = client_soc(Watts::new(tdp));
            for wl in WorkloadType::ACTIVE_TYPES {
                for ar_v in [0.45, 0.65] {
                    let ar = ApplicationRatio::new(ar_v).unwrap();
                    let s = Scenario::active_fixed_tdp_frequency(&soc, wl, ar).unwrap();
                    let oracle = if ivr.evaluate(&s).unwrap().etee >= ldo.evaluate(&s).unwrap().etee
                    {
                        PdnMode::IvrMode
                    } else {
                        PdnMode::LdoMode
                    };
                    let predicted = p.predict(inputs(tdp, ar_v, wl));
                    total += 1;
                    if predicted == oracle {
                        agree += 1;
                    }
                }
            }
        }
        assert!(
            agree as f64 / total as f64 >= 0.85,
            "predictor agreed with the oracle on only {agree}/{total} points"
        );
    }

    #[test]
    fn hysteresis_holds_the_current_mode_near_the_crossover() {
        let p = trained().with_hysteresis(0.05);
        // A near-crossover point: 18 W multi-thread.
        let i = inputs(18.0, 0.6, WorkloadType::MultiThread);
        let sticky_ivr = p.predict_with_hysteresis(i, PdnMode::IvrMode);
        let sticky_ldo = p.predict_with_hysteresis(i, PdnMode::LdoMode);
        // With a 5 % margin, both current modes persist at the crossover.
        assert_eq!(sticky_ivr, PdnMode::IvrMode);
        assert_eq!(sticky_ldo, PdnMode::LdoMode);
        // With no margin, both collapse to the same argmax decision.
        let p0 = trained().with_hysteresis(0.0);
        assert_eq!(
            p0.predict_with_hysteresis(i, PdnMode::IvrMode),
            p0.predict_with_hysteresis(i, PdnMode::LdoMode)
        );
    }

    #[test]
    fn retraining_through_a_shared_cache_is_bit_identical_and_fully_cached() {
        let params = ModelParams::paper_defaults();
        let axes: (&[f64], &[f64]) = (&[4.0, 18.0, 50.0], &[0.4, 0.6, 0.8]);
        let plain = ModePredictor::train(&params, axes.0, axes.1).unwrap();
        let memo = MemoCache::new();
        let cold = ModePredictor::train_with(&params, axes.0, axes.1, Some(&memo)).unwrap();
        let cold_stats = memo.stats();
        assert_eq!(cold_stats.hits, 0, "nothing to reuse on the first training");
        let warm = ModePredictor::train_with(&params, axes.0, axes.1, Some(&memo)).unwrap();
        let warm_stats = memo.stats();
        assert_eq!(
            warm_stats.misses, cold_stats.misses,
            "retraining must not evaluate anything new"
        );
        assert!(warm_stats.hits > 0, "retraining must be served from cache");
        for predictor in [&cold, &warm] {
            assert_eq!(predictor.ivr_tables, plain.ivr_tables);
            assert_eq!(predictor.ldo_tables, plain.ldo_tables);
        }
    }

    #[test]
    fn firmware_flash_round_trip_preserves_decisions() {
        let p = trained();
        let [ivr_img, ldo_img] = p.firmware_images();
        let rebooted =
            ModePredictor::from_firmware(ivr_img.as_bytes(), ldo_img.as_bytes()).unwrap();
        for tdp in [5.0, 17.0, 42.0] {
            for wl in WorkloadType::ACTIVE_TYPES {
                let i = inputs(tdp, 0.62, wl);
                assert_eq!(p.predict(i), rebooted.predict(i), "{tdp} W {wl}");
            }
        }
        let flash_bytes = ivr_img.len() + ldo_img.len();
        assert!(flash_bytes < 16 * 1024, "predictor flash cost {flash_bytes} B");
    }

    #[test]
    fn table_footprint_scales_with_resolution() {
        let coarse =
            ModePredictor::train(&ModelParams::paper_defaults(), &[4.0, 50.0], &[0.4, 0.8])
                .unwrap();
        let fine = trained();
        assert!(fine.table_entries() > coarse.table_entries());
        assert_eq!(fine.evaluation_interval(), ModePredictor::DEFAULT_INTERVAL);
    }
}
