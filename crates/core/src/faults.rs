//! Deterministic fault injection and graceful degradation for the
//! FlexWatts runtime.
//!
//! The paper's safety argument (§6) is that mode switching is
//! voltage-noise-free and that the PMU's maximum-current protection —
//! never the efficiency preference — has the last word on the shared
//! `V_IN` rail. The clean-path simulator in [`crate::runtime`] exercises
//! neither claim under adversity, so this module adds a seeded fault
//! layer and the recovery contract that keeps the closed loop safe while
//! faults land:
//!
//! * a [`FaultPlan`] schedules faults per trace interval — stuck-at or
//!   noisy activity sensors, dropped PMU telemetry, transient `V_IN`
//!   droops that must trip the maximum-current protection, mode-switch
//!   flow failures, and bit-flipped firmware images;
//! * a [`DegradationPolicy`] defines how the runtime degrades: bounded
//!   retry-with-backoff on switch failures, fallback to last-good sensor
//!   readings, and a watchdog that latches the safe IVR-Mode after N
//!   consecutive failed switch sequences instead of oscillating;
//! * [`FlexWattsRuntime::run_faulted`] executes a campaign and returns a
//!   [`FaultCampaignReport`] with injected/detected/recovered/degraded
//!   counts and the safety invariants checked every interval.
//!
//! Everything is deterministic under the plan's seed (the same splitmix
//! discipline as the activity sensors and the batch engine): the same
//! seed and plan yield a bit-identical report, so fault campaigns are
//! reproducible evidence, not flaky chaos tests.

use crate::runtime::{FlexWattsRuntime, PreparedInterval, RuntimeReport};
use crate::topology::PdnMode;
use pdn_pmu::{CStateDriver, FirmwareImage};
use pdn_proc::{DomainKind, PackageCState};
use pdn_units::{Amps, ApplicationRatio, Seconds};
use pdn_workload::{Phase, Trace, WorkloadType};
use pdnspot::batch::{par_map, Workers};
use pdnspot::{Pdn, PdnError, Scenario};
use std::collections::BTreeMap;
use std::fmt;

/// The sensor quantisation floor (the smallest representable estimate).
const AR_FLOOR: f64 = 1.0 / 64.0;

// ---------------------------------------------------------------------------
// Fault vocabulary
// ---------------------------------------------------------------------------

/// One injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The activity sensor reports a fixed value regardless of the truth.
    SensorStuck {
        /// The stuck reading (clamped into the sensor's range).
        ar: f64,
    },
    /// The activity sensor reading carries additional deterministic noise.
    SensorNoise {
        /// Peak amplitude of the injected noise (AR units).
        amplitude: f64,
    },
    /// The PMU telemetry sample for the interval is lost entirely.
    TelemetryDrop,
    /// A transient droop on the shared `V_IN` rail: the rail voltage sags
    /// to `factor`× nominal, so delivering the same power pulls
    /// `1/factor`× the current — which must trip the maximum-current
    /// protection if the margin is gone.
    VinDroop {
        /// Voltage retention factor in `(0, 1)`; 0.8 = a 20 % droop.
        factor: f64,
    },
    /// The next `attempts` mode-switch flow executions in this interval
    /// time out (the off-chip VR never acknowledges the set point).
    SwitchFailure {
        /// Consecutive attempts that fail before the flow would succeed.
        attempts: u32,
    },
    /// A bit flip in a stored predictor firmware image, discovered when
    /// the PMU re-validates its flash.
    FirmwareBitFlip {
        /// Byte offset (reduced modulo the image length on injection).
        offset: usize,
        /// XOR mask applied to the byte (forced non-zero on injection).
        mask: u8,
    },
}

impl FaultKind {
    /// The class used for scheduling and per-class accounting.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::SensorStuck { .. } | FaultKind::SensorNoise { .. } => FaultClass::Sensor,
            FaultKind::TelemetryDrop => FaultClass::Telemetry,
            FaultKind::VinDroop { .. } => FaultClass::VinDroop,
            FaultKind::SwitchFailure { .. } => FaultClass::SwitchFlow,
            FaultKind::FirmwareBitFlip { .. } => FaultClass::Firmware,
        }
    }
}

/// Fault classes (one scheduling rate per class in a [`FaultMix`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// Stuck-at / noisy activity sensors.
    Sensor,
    /// Dropped PMU telemetry samples.
    Telemetry,
    /// Transient `V_IN` droops.
    VinDroop,
    /// Mode-switch flow failures.
    SwitchFlow,
    /// Corrupted firmware images.
    Firmware,
}

impl FaultClass {
    /// Every class, in accounting order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::Sensor,
        FaultClass::Telemetry,
        FaultClass::VinDroop,
        FaultClass::SwitchFlow,
        FaultClass::Firmware,
    ];
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultClass::Sensor => "sensor",
            FaultClass::Telemetry => "telemetry",
            FaultClass::VinDroop => "vin-droop",
            FaultClass::SwitchFlow => "switch-flow",
            FaultClass::Firmware => "firmware",
        };
        f.write_str(name)
    }
}

/// A fault scheduled at a specific trace interval.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Index of the trace interval the fault is active in.
    pub interval: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Per-class scheduling rates (probability that a class fires in a given
/// interval) for [`FaultPlan::generate`]. Rates are clamped into
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Stuck-at / noisy sensor rate.
    pub sensor: f64,
    /// Telemetry-drop rate.
    pub telemetry: f64,
    /// `V_IN` droop rate.
    pub vin_droop: f64,
    /// Switch-flow failure rate.
    pub switch_flow: f64,
    /// Firmware bit-flip rate.
    pub firmware: f64,
}

impl FaultMix {
    /// No faults at all (the control arm of a campaign).
    pub fn none() -> Self {
        Self { sensor: 0.0, telemetry: 0.0, vin_droop: 0.0, switch_flow: 0.0, firmware: 0.0 }
    }

    /// Sensor-path faults only (stuck/noisy sensors + dropped telemetry).
    pub fn sensors() -> Self {
        Self { sensor: 0.25, telemetry: 0.10, ..Self::none() }
    }

    /// Electrical faults only (`V_IN` droops).
    pub fn electrical() -> Self {
        Self { vin_droop: 0.20, ..Self::none() }
    }

    /// Mode-switch flow failures only.
    pub fn switch_flow() -> Self {
        Self { switch_flow: 0.30, ..Self::none() }
    }

    /// Firmware corruption only.
    pub fn firmware() -> Self {
        Self { firmware: 0.08, ..Self::none() }
    }

    /// Everything at once, at moderate rates.
    pub fn chaos() -> Self {
        Self { sensor: 0.15, telemetry: 0.08, vin_droop: 0.12, switch_flow: 0.15, firmware: 0.05 }
    }

    fn rate(&self, class: FaultClass) -> f64 {
        let r = match class {
            FaultClass::Sensor => self.sensor,
            FaultClass::Telemetry => self.telemetry,
            FaultClass::VinDroop => self.vin_droop,
            FaultClass::SwitchFlow => self.switch_flow,
            FaultClass::Firmware => self.firmware,
        };
        r.clamp(0.0, 1.0)
    }
}

/// A deterministic fault schedule over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    by_interval: BTreeMap<usize, Vec<FaultKind>>,
    events: usize,
}

impl FaultPlan {
    /// An empty plan (no faults) under a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, by_interval: BTreeMap::new(), events: 0 }
    }

    /// Adds one fault at one interval (builder style).
    pub fn with_event(mut self, interval: usize, kind: FaultKind) -> Self {
        self.by_interval.entry(interval).or_default().push(kind);
        self.events += 1;
        self
    }

    /// Generates a plan for `intervals` trace intervals from a seed and a
    /// mix: for every (interval, class) pair a splitmix draw decides
    /// whether the class fires, and further draws pick the fault
    /// parameters. The same `(seed, intervals, mix)` always produces the
    /// same plan.
    pub fn generate(seed: u64, intervals: usize, mix: &FaultMix) -> Self {
        let mut plan = Self::new(seed);
        for i in 0..intervals {
            for (c, class) in FaultClass::ALL.into_iter().enumerate() {
                let gate = hash3(seed, c as u64 + 1, i as u64);
                if to_unit(gate) >= mix.rate(class) {
                    continue;
                }
                let p1 = hash3(seed ^ 0xA5A5_A5A5, c as u64 + 1, i as u64);
                let p2 = hash3(seed ^ 0x5A5A_5A5A, c as u64 + 1, i as u64);
                let kind = match class {
                    FaultClass::Sensor => {
                        if p1 & 1 == 0 {
                            FaultKind::SensorStuck { ar: to_unit(p2) }
                        } else {
                            FaultKind::SensorNoise { amplitude: 0.05 + 0.35 * to_unit(p2) }
                        }
                    }
                    FaultClass::Telemetry => FaultKind::TelemetryDrop,
                    FaultClass::VinDroop => {
                        FaultKind::VinDroop { factor: 0.55 + 0.35 * to_unit(p2) }
                    }
                    FaultClass::SwitchFlow => {
                        FaultKind::SwitchFailure { attempts: 1 + (p2 % 6) as u32 }
                    }
                    FaultClass::Firmware => FaultKind::FirmwareBitFlip {
                        offset: p1 as usize,
                        mask: ((p2 % 255) + 1) as u8,
                    },
                };
                plan = plan.with_event(i, kind);
            }
        }
        plan
    }

    /// The seed the plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Iterates over every scheduled event in interval order.
    pub fn events(&self) -> impl Iterator<Item = FaultEvent> + '_ {
        self.by_interval.iter().flat_map(|(&interval, kinds)| {
            kinds.iter().map(move |kind| FaultEvent { interval, kind: kind.clone() })
        })
    }

    fn at(&self, interval: usize) -> &[FaultKind] {
        self.by_interval.get(&interval).map(Vec::as_slice).unwrap_or(&[])
    }
}

// ---------------------------------------------------------------------------
// Degradation policy
// ---------------------------------------------------------------------------

/// The recovery contract the runtime follows when faults land.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Retries granted to a failed mode-switch flow (beyond the first
    /// attempt) before the decision is abandoned.
    pub max_switch_retries: u32,
    /// Linear backoff added before each retry (`attempt × backoff` of
    /// normal execution in the current mode).
    pub retry_backoff: Seconds,
    /// Consecutive abandoned switch sequences after which the watchdog
    /// latches the safe IVR-Mode instead of oscillating.
    pub watchdog_threshold: u32,
    /// Whether implausible/missing sensor readings fall back to the
    /// last-good sample (the graceful path). When disabled, drops assume
    /// the conservative full-activity reading and corrupt samples are
    /// consumed raw.
    pub sensor_fallback: bool,
    /// A sensor reading jumping more than this from the last-good sample
    /// is treated as implausible. Two consecutive consistent outliers are
    /// accepted as a genuine workload change.
    pub sensor_jump_threshold: f64,
    /// Strict mode: instead of degrading gracefully, an abandoned switch
    /// sequence aborts the campaign with [`PdnError::Degraded`].
    pub strict: bool,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            max_switch_retries: 2,
            retry_backoff: Seconds::from_micros(50.0),
            watchdog_threshold: 3,
            sensor_fallback: true,
            sensor_jump_threshold: 0.35,
            strict: false,
        }
    }
}

impl DegradationPolicy {
    /// The strict variant of the default policy: degradation is an error.
    pub fn strict() -> Self {
        Self { strict: true, ..Self::default() }
    }
}

// ---------------------------------------------------------------------------
// Campaign report
// ---------------------------------------------------------------------------

/// Fault accounting over one campaign.
///
/// Every scheduled event lands in exactly one of `injected` (exercised
/// against live state) or `dormant` (scheduled, but the faulted facility
/// was not consulted — e.g. a sensor fault during an idle interval).
/// Every injected event is either `detected` (a guard saw it) or
/// `silent` (in-range corruption that only costs efficiency, never
/// safety). Detected events split into `recovered` (a fallback restored
/// full function) and `degraded` (the contract was reduced: a switch
/// decision abandoned, or a drop consumed without fallback).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultCounts {
    /// Events scheduled inside the trace.
    pub armed: u64,
    /// Events that actually perturbed execution.
    pub injected: u64,
    /// Injected events observed by a runtime guard.
    pub detected: u64,
    /// Detected events fully absorbed by a fallback.
    pub recovered: u64,
    /// Detected events that reduced the service contract.
    pub degraded: u64,
    /// Injected events no guard could see.
    pub silent: u64,
    /// Scheduled events that never met live state.
    pub dormant: u64,
    /// Guard activations with no fault injected (plausibility filter
    /// tripped by a genuine workload change).
    pub false_positives: u64,
}

impl FaultCounts {
    /// The internal consistency of the ledger:
    /// `armed = injected + dormant` and
    /// `injected = detected + silent` and
    /// `detected = recovered + degraded`.
    pub fn consistent(&self) -> bool {
        self.armed == self.injected + self.dormant
            && self.injected == self.detected + self.silent
            && self.detected == self.recovered + self.degraded
    }
}

/// The safety invariants checked continuously during a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantReport {
    /// Execution chunks that ran in LDO-Mode with the effective `V_IN`
    /// current above the protection trip point. Must be zero: the
    /// maximum-current protection has the last word.
    pub over_trip_chunks: u64,
    /// Worst effective `V_IN` current observed while executing LDO-Mode.
    pub max_ldo_vin_current: Amps,
    /// The protection trip current the campaign was checked against.
    pub trip_current: Amps,
    /// Relative error between the energy accumulator and the independent
    /// per-bucket ledger (per-mode chunks + switch flows + backoff).
    pub energy_ledger_error: f64,
    /// Absolute error (seconds) between total time and the per-bucket
    /// time ledger.
    pub time_ledger_error: f64,
    /// Whether the oracle's energy stayed ≤ the runtime's (the oracle
    /// runs the cheaper mode under the same wall clock, so a violation
    /// means the accounting double-charged or dropped energy).
    pub oracle_bounded: bool,
}

impl InvariantReport {
    /// Whether every invariant held.
    pub fn holds(&self) -> bool {
        self.over_trip_chunks == 0
            && self.energy_ledger_error < 1e-9
            && self.time_ledger_error < 1e-9
            && self.oracle_bounded
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "over-trip chunks {} (max {:.3} A vs trip {:.3} A), energy ledger err {:.2e}, \
             time ledger err {:.2e} s, oracle bounded: {}",
            self.over_trip_chunks,
            self.max_ldo_vin_current.get(),
            self.trip_current.get(),
            self.energy_ledger_error,
            self.time_ledger_error,
            self.oracle_bounded,
        )
    }
}

/// The outcome of one fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaignReport {
    /// The plan's seed (for reproduction).
    pub seed: u64,
    /// The usual energy/switch report of the (faulted) run.
    pub runtime: RuntimeReport,
    /// Fault accounting totals.
    pub counts: FaultCounts,
    /// Injected (exercised) events per fault class.
    pub injected_by_class: BTreeMap<FaultClass, u64>,
    /// Whether the watchdog latched the safe IVR-Mode.
    pub watchdog_latched: bool,
    /// The safety invariants, checked every chunk.
    pub invariants: InvariantReport,
}

// ---------------------------------------------------------------------------
// Campaign execution
// ---------------------------------------------------------------------------

/// Faults active during one trace interval, folded from the plan.
struct ActiveFaults {
    stuck: Option<f64>,
    noise: Option<f64>,
    drop: bool,
    droop: f64,
    switch_attempts: u32,
    firmware: Vec<(usize, u8)>,
    sensor_events: u64,
    telemetry_events: u64,
    droop_events: u64,
    switch_events: u64,
}

impl ActiveFaults {
    fn fold(kinds: &[FaultKind]) -> Self {
        let mut f = Self {
            stuck: None,
            noise: None,
            drop: false,
            droop: 1.0,
            switch_attempts: 0,
            firmware: Vec::new(),
            sensor_events: 0,
            telemetry_events: 0,
            droop_events: 0,
            switch_events: 0,
        };
        for kind in kinds {
            match kind {
                FaultKind::SensorStuck { ar } => {
                    f.stuck = Some(ar.clamp(AR_FLOOR, 1.0));
                    f.sensor_events += 1;
                }
                FaultKind::SensorNoise { amplitude } => {
                    f.noise = Some(f.noise.unwrap_or(0.0) + amplitude.abs());
                    f.sensor_events += 1;
                }
                FaultKind::TelemetryDrop => {
                    f.drop = true;
                    f.telemetry_events += 1;
                }
                FaultKind::VinDroop { factor } => {
                    f.droop = f.droop.min(factor.clamp(0.05, 1.0));
                    f.droop_events += 1;
                }
                FaultKind::SwitchFailure { attempts } => {
                    f.switch_attempts += attempts;
                    f.switch_events += 1;
                }
                FaultKind::FirmwareBitFlip { offset, mask } => {
                    f.firmware.push((*offset, if *mask == 0 { 1 } else { *mask }));
                }
            }
        }
        f
    }

    fn sensor_faulted(&self) -> bool {
        self.stuck.is_some() || self.noise.is_some()
    }
}

impl FlexWattsRuntime {
    /// Simulates a trace with the plan's faults injected and the policy's
    /// recovery contract applied, checking the safety invariants on every
    /// execution chunk.
    ///
    /// Equivalent to [`run_faulted_with`](Self::run_faulted_with) on the
    /// full worker pool: the pure per-interval preparation fans out in
    /// parallel, while injection, detection, and recovery replay serially
    /// in trace order, so the report is bit-identical for any worker
    /// choice and for repeated runs of the same `(plan, policy)`.
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors; under a
    /// [strict](DegradationPolicy::strict) policy, also returns
    /// [`PdnError::Degraded`] when a switch sequence exhausts its
    /// retries.
    pub fn run_faulted(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        policy: &DegradationPolicy,
    ) -> Result<FaultCampaignReport, PdnError> {
        self.run_faulted_with(trace, plan, policy, Workers::Auto)
    }

    /// [`run_faulted`](Self::run_faulted) with an explicit worker choice.
    ///
    /// # Errors
    ///
    /// See [`run_faulted`](Self::run_faulted).
    pub fn run_faulted_with(
        &self,
        trace: &Trace,
        plan: &FaultPlan,
        policy: &DegradationPolicy,
        workers: Workers,
    ) -> Result<FaultCampaignReport, PdnError> {
        let prepared = par_map(trace.intervals(), workers, |_, interval| {
            self.prepare_interval(interval.phase)
        });
        let prepared: Vec<PreparedInterval> = prepared.into_iter().collect::<Result<_, _>>()?;
        let sensors = self.fresh_sensor_bank();
        let n_intervals = trace.intervals().len();

        // Campaign state.
        let mut mode = self.config.initial_mode;
        let mut energy = 0.0;
        let mut oracle_energy = 0.0;
        let mut switches = Vec::new();
        let mut time_in_mode: BTreeMap<PdnMode, Seconds> =
            PdnMode::ALL.iter().map(|&m| (m, Seconds::ZERO)).collect();
        let mut driver = CStateDriver::new();
        let mut evaluations = 0u64;
        let mut correct_predictions = 0u64;
        let mut protection_overrides = 0u64;
        let mut total_time = Seconds::ZERO;
        let eval_interval = self.predictor.evaluation_interval();
        let mut since_eval = eval_interval; // evaluate at trace start

        // Degradation state.
        let mut last_good: Option<ApplicationRatio> = None;
        let mut last_rejected: Option<f64> = None;
        let mut consecutive_failed_sequences = 0u32;
        let mut latched = false;
        let mut switch_failures = 0u64;
        let mut switch_retries = 0u64;

        // Fault accounting.
        let mut counts = FaultCounts::default();
        let mut injected_by_class: BTreeMap<FaultClass, u64> =
            FaultClass::ALL.iter().map(|&c| (c, 0)).collect();
        counts.armed = plan.events().filter(|e| e.interval < n_intervals).count() as u64;

        // Invariant ledgers (independent of the primary accumulators).
        let mut mode_energy: BTreeMap<PdnMode, f64> =
            PdnMode::ALL.iter().map(|&m| (m, 0.0)).collect();
        let mut flow_energy = 0.0; // C6 power during switches/aborts
        let mut backoff_energy = 0.0;
        let mut flow_time = Seconds::ZERO;
        let mut backoff_time = Seconds::ZERO;
        let mut over_trip_chunks = 0u64;
        let mut max_ldo_vin = Amps::ZERO;
        let trip = self.protection.trip_current();

        for (i, (interval, prep)) in trace.intervals().iter().zip(&prepared).enumerate() {
            let PreparedInterval { scenario, power_ivr, power_ldo, vin_ldo, estimated_type } = prep;
            let (power_ivr, power_ldo, vin_ldo) = (*power_ivr, *power_ldo, *vin_ldo);
            let faults = ActiveFaults::fold(plan.at(i));

            // --- Firmware faults: the PMU re-validates its flash copy.
            for &(offset, mask) in &faults.firmware {
                counts.injected += 1;
                *injected_by_class.get_mut(&FaultClass::Firmware).expect("class present") += 1;
                let [ivr_img, ldo_img] = self.predictor.firmware_images();
                let target = if offset & 1 == 0 { &ivr_img } else { &ldo_img };
                let mut bytes = target.as_bytes().to_vec();
                let at = offset % bytes.len();
                bytes[at] ^= mask;
                if FirmwareImage::parse(&bytes).is_err() {
                    // CRC caught the flip; the runtime keeps its RAM
                    // tables (last-good) and execution continues at full
                    // function.
                    counts.detected += 1;
                    counts.recovered += 1;
                } else {
                    counts.silent += 1;
                }
            }

            // --- Sensor path: draw, corrupt, guard.
            let pmu_inputs = match interval.phase {
                Phase::Active { ar, .. } => {
                    let clean = sensors.estimate(DomainKind::Core0, ar);
                    let mut reading: Option<f64> = Some(clean.get());
                    if let Some(stuck) = faults.stuck {
                        reading = Some(stuck);
                    }
                    if let Some(amplitude) = faults.noise {
                        let h = hash3(plan.seed ^ 0xBEEF, 7, i as u64);
                        let noise = (to_unit(h) - 0.5) * 2.0 * amplitude;
                        reading = reading.map(|r| r + noise);
                    }
                    if faults.drop {
                        reading = None;
                    }
                    counts.injected += faults.sensor_events + faults.telemetry_events;
                    *injected_by_class.get_mut(&FaultClass::Sensor).expect("class present") +=
                        faults.sensor_events;
                    *injected_by_class.get_mut(&FaultClass::Telemetry).expect("class present") +=
                        faults.telemetry_events;

                    let accepted = match reading {
                        None => {
                            // A missing sample is always detected.
                            counts.detected += faults.telemetry_events;
                            if policy.sensor_fallback {
                                counts.recovered += faults.telemetry_events;
                                // Sensor faults stacked under the drop
                                // never reached the PMU.
                                counts.silent += faults.sensor_events;
                                last_good.unwrap_or(ApplicationRatio::POWER_VIRUS)
                            } else {
                                counts.degraded += faults.telemetry_events;
                                counts.silent += faults.sensor_events;
                                ApplicationRatio::POWER_VIRUS
                            }
                        }
                        Some(raw) => {
                            let clamped = raw.clamp(AR_FLOOR, 1.0);
                            let candidate =
                                ApplicationRatio::new(clamped).expect("clamped AR is valid");
                            let implausible = policy.sensor_fallback
                                && last_good.is_some_and(|good| {
                                    (clamped - good.get()).abs() > policy.sensor_jump_threshold
                                });
                            let consistent_outlier = implausible
                                && last_rejected.is_some_and(|prev| {
                                    (clamped - prev).abs() <= policy.sensor_jump_threshold / 2.0
                                });
                            if implausible && !consistent_outlier {
                                // Guard tripped: fall back to last-good.
                                last_rejected = Some(clamped);
                                if faults.sensor_faulted() {
                                    counts.detected += faults.sensor_events;
                                    counts.recovered += faults.sensor_events;
                                } else {
                                    counts.false_positives += 1;
                                }
                                last_good.expect("implausible requires last_good")
                            } else {
                                // Accepted (possibly a consistent outlier
                                // = genuine workload change, possibly
                                // silent in-range corruption).
                                last_rejected = None;
                                last_good = Some(candidate);
                                counts.silent +=
                                    if faults.sensor_faulted() { faults.sensor_events } else { 0 };
                                candidate
                            }
                        }
                    };
                    crate::predictor::PredictorInputs {
                        tdp: self.soc.tdp,
                        ar: accepted,
                        workload_type: *estimated_type,
                        power_state: None,
                    }
                }
                Phase::Idle(state) => {
                    // The sensor path is not consulted while idle:
                    // scheduled sensor/telemetry faults stay dormant.
                    counts.dormant += faults.sensor_events + faults.telemetry_events;
                    crate::predictor::PredictorInputs {
                        tdp: self.soc.tdp,
                        ar: interval.phase.ar(),
                        workload_type: WorkloadType::BatteryLife,
                        power_state: Some(state),
                    }
                }
            };

            // --- V_IN droop: always an electrical event, always seen by
            // the rail telemetry; force a prompt re-evaluation so the
            // protection can act inside this interval.
            let droop = faults.droop;
            if faults.droop_events > 0 {
                counts.injected += faults.droop_events;
                counts.detected += faults.droop_events;
                *injected_by_class.get_mut(&FaultClass::VinDroop).expect("class present") +=
                    faults.droop_events;
                since_eval = eval_interval;
            }
            let effective_vin = vin_ldo / droop;
            let over_trip_before = over_trip_chunks;

            let oracle_power = power_ivr.min(power_ldo);
            let oracle_mode =
                if power_ivr <= power_ldo { PdnMode::IvrMode } else { PdnMode::LdoMode };

            // Switch-flow faults arm once per interval; the counter
            // depletes as attempts fail.
            let mut pending_switch_failures = faults.switch_attempts;
            let mut switch_fault_exercised = false;

            let c6 = Scenario::idle(&self.soc, PackageCState::C6);

            let mut remaining = interval.duration;
            while remaining.get() > 0.0 {
                if since_eval >= eval_interval {
                    since_eval = Seconds::ZERO;
                    evaluations += 1;
                    let mut decided = if latched {
                        PdnMode::IvrMode
                    } else {
                        self.predictor.predict_with_hysteresis(pmu_inputs, mode)
                    };
                    let mut forced_by_protection = false;
                    if self.config.max_current_protection
                        && decided == PdnMode::LdoMode
                        && self.protection.would_trip(effective_vin)
                    {
                        decided = PdnMode::IvrMode;
                        forced_by_protection = true;
                        protection_overrides += 1;
                    }
                    if decided == oracle_mode {
                        correct_predictions += 1;
                    }
                    if decided != mode {
                        let v_from = self.vin_level(mode, scenario);
                        let v_to = self.vin_level(decided, scenario);
                        let c6_power = self.pdn(mode).evaluate(&c6)?.input_power;
                        // Protection-mandated switches run the hardened
                        // ROM flow: electrical safety has the last word,
                        // injected flow faults cannot block it.
                        let budget = 1 + policy.max_switch_retries;
                        let mut attempt = 0u32;
                        let mut succeeded = false;
                        while attempt < budget {
                            attempt += 1;
                            if pending_switch_failures > 0 && !forced_by_protection {
                                pending_switch_failures -= 1;
                                switch_fault_exercised = true;
                                switch_failures += 1;
                                if attempt > 1 {
                                    switch_retries += 1;
                                }
                                // The aborted flow parks the package in
                                // C6 for its whole duration.
                                let lost =
                                    self.switch_flow.execute_aborted(v_from, v_to, &mut driver);
                                energy += c6_power * lost;
                                oracle_energy += c6_power * lost;
                                flow_energy += c6_power * lost;
                                flow_time += lost;
                                total_time += lost;
                                // Linear backoff before the next attempt,
                                // executing normally in the old mode.
                                if attempt < budget {
                                    let wait = policy.retry_backoff * attempt as f64;
                                    let run_power = match mode {
                                        PdnMode::IvrMode => power_ivr,
                                        PdnMode::LdoMode => power_ldo,
                                    };
                                    energy += run_power * wait;
                                    oracle_energy += oracle_power * wait;
                                    backoff_energy += run_power * wait;
                                    backoff_time += wait;
                                    total_time += wait;
                                }
                                continue;
                            }
                            if attempt > 1 {
                                switch_retries += 1;
                            }
                            let transition =
                                self.switch_flow.execute(mode, decided, v_from, v_to, &mut driver);
                            let switch_time = transition.total();
                            let c6_power_new = self.pdn(decided).evaluate(&c6)?.input_power;
                            energy += c6_power_new * switch_time;
                            oracle_energy += c6_power_new * switch_time;
                            flow_energy += c6_power_new * switch_time;
                            flow_time += switch_time;
                            total_time += switch_time;
                            switches.push(transition);
                            mode = decided;
                            succeeded = true;
                            break;
                        }
                        if succeeded {
                            consecutive_failed_sequences = 0;
                            if attempt > 1 && switch_fault_exercised {
                                // A retry absorbed the fault.
                                counts.recovered += 1;
                                counts.detected += 1;
                                counts.injected += 1;
                                *injected_by_class
                                    .get_mut(&FaultClass::SwitchFlow)
                                    .expect("class present") += 1;
                                switch_fault_exercised = false;
                            }
                        } else {
                            // Retries exhausted: the decision is
                            // abandoned.
                            counts.injected += 1;
                            counts.detected += 1;
                            counts.degraded += 1;
                            *injected_by_class
                                .get_mut(&FaultClass::SwitchFlow)
                                .expect("class present") += 1;
                            switch_fault_exercised = false;
                            consecutive_failed_sequences += 1;
                            if policy.strict {
                                return Err(PdnError::Degraded {
                                    component: "FlexWattsRuntime".into(),
                                    reason: format!(
                                        "mode switch {mode} -> {decided} abandoned after {} \
                                         attempts at interval {i}",
                                        budget
                                    ),
                                });
                            }
                            if consecutive_failed_sequences >= policy.watchdog_threshold && !latched
                            {
                                // Watchdog: latch the safe IVR-Mode via
                                // the hardened flow instead of
                                // oscillating through further failures.
                                latched = true;
                                if mode != PdnMode::IvrMode {
                                    let v_to_safe = self.vin_level(PdnMode::IvrMode, scenario);
                                    let transition = self.switch_flow.execute(
                                        mode,
                                        PdnMode::IvrMode,
                                        v_from,
                                        v_to_safe,
                                        &mut driver,
                                    );
                                    let switch_time = transition.total();
                                    let c6_power_safe =
                                        self.pdn(PdnMode::IvrMode).evaluate(&c6)?.input_power;
                                    energy += c6_power_safe * switch_time;
                                    oracle_energy += c6_power_safe * switch_time;
                                    flow_energy += c6_power_safe * switch_time;
                                    flow_time += switch_time;
                                    total_time += switch_time;
                                    switches.push(transition);
                                    mode = PdnMode::IvrMode;
                                }
                            }
                        }
                    }
                }

                // --- Chunk-level electrical guard: the hardware
                // protection loop is far faster than the 10 ms predictor
                // loop; if the droop pushed the executing LDO-Mode over
                // the trip point between evaluations, it re-routes to
                // IVR-Mode immediately through the hardened flow.
                if self.config.max_current_protection
                    && mode == PdnMode::LdoMode
                    && self.protection.would_trip(effective_vin)
                {
                    protection_overrides += 1;
                    let v_from = self.vin_level(mode, scenario);
                    let v_to = self.vin_level(PdnMode::IvrMode, scenario);
                    let c6_power_safe = self.pdn(PdnMode::IvrMode).evaluate(&c6)?.input_power;
                    let transition =
                        self.switch_flow.execute(mode, PdnMode::IvrMode, v_from, v_to, &mut driver);
                    let switch_time = transition.total();
                    energy += c6_power_safe * switch_time;
                    oracle_energy += c6_power_safe * switch_time;
                    flow_energy += c6_power_safe * switch_time;
                    flow_time += switch_time;
                    total_time += switch_time;
                    switches.push(transition);
                    mode = PdnMode::IvrMode;
                }

                let chunk = remaining.min(eval_interval - since_eval).min(remaining);
                let power = match mode {
                    PdnMode::IvrMode => power_ivr,
                    PdnMode::LdoMode => power_ldo,
                };
                if mode == PdnMode::LdoMode {
                    max_ldo_vin = max_ldo_vin.max(effective_vin);
                    if self.protection.would_trip(effective_vin) {
                        over_trip_chunks += 1;
                    }
                }
                energy += power * chunk;
                oracle_energy += oracle_power * chunk;
                *mode_energy.get_mut(&mode).expect("all modes present") += power * chunk;
                *time_in_mode.get_mut(&mode).expect("all modes present") += chunk;
                total_time += chunk;
                since_eval += chunk;
                remaining -= chunk;
            }

            // Droop accounting: recovered iff the protection kept every
            // chunk of this interval below the trip point.
            if faults.droop_events > 0 {
                if over_trip_chunks == over_trip_before {
                    counts.recovered += faults.droop_events;
                } else {
                    counts.degraded += faults.droop_events;
                }
            }
            // A switch-flow fault that armed but never saw a switch
            // attempt stays dormant. (Partially consumed arms collapse
            // into the sequences already counted above.)
            if faults.switch_events > 0 && faults.switch_attempts == pending_switch_failures {
                counts.dormant += faults.switch_events;
            }
        }

        // Reconcile armed vs injected/dormant for multi-event intervals
        // (e.g. a switch event that fired alongside its sibling): any
        // armed event not yet classified was dormant.
        let classified = counts.injected + counts.dormant;
        if counts.armed > classified {
            counts.dormant += counts.armed - classified;
        } else {
            counts.armed = classified;
        }

        let ledger_energy: f64 = mode_energy.values().sum::<f64>() + flow_energy + backoff_energy;
        let energy_ledger_error = if energy.abs() > 0.0 {
            ((energy - ledger_energy) / energy).abs()
        } else {
            ledger_energy.abs()
        };
        let ledger_time: Seconds =
            time_in_mode.values().copied().sum::<Seconds>() + flow_time + backoff_time;
        let time_ledger_error = (total_time - ledger_time).abs().get();

        let invariants = InvariantReport {
            over_trip_chunks,
            max_ldo_vin_current: max_ldo_vin,
            trip_current: trip,
            energy_ledger_error,
            time_ledger_error,
            oracle_bounded: oracle_energy <= energy + 1e-12,
        };

        Ok(FaultCampaignReport {
            seed: plan.seed,
            runtime: RuntimeReport {
                total_time,
                energy_joules: energy,
                oracle_energy_joules: oracle_energy,
                switches,
                time_in_mode,
                predictor_evaluations: evaluations,
                prediction_accuracy: if evaluations == 0 {
                    1.0
                } else {
                    correct_predictions as f64 / evaluations as f64
                },
                protection_overrides,
                switch_failures,
                switch_retries,
            },
            counts,
            injected_by_class,
            watchdog_latched: latched,
            invariants,
        })
    }
}

// ---------------------------------------------------------------------------
// Deterministic hashing (the PR-1 seeding discipline)
// ---------------------------------------------------------------------------

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash3(seed: u64, a: u64, b: u64) -> u64 {
    splitmix(seed ^ splitmix(a.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ splitmix(b)))
}

fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::ModePredictor;
    use crate::runtime::RuntimeConfig;
    use pdn_proc::client_soc;
    use pdn_units::Watts;
    use pdn_workload::{BatteryLifeWorkload, TraceInterval};
    use pdnspot::ModelParams;

    fn predictor() -> ModePredictor {
        ModePredictor::train(
            &ModelParams::paper_defaults(),
            &[4.0, 10.0, 18.0, 25.0, 50.0],
            &[0.4, 0.6, 0.8],
        )
        .unwrap()
    }

    fn runtime(tdp: f64) -> FlexWattsRuntime {
        FlexWattsRuntime::new(
            client_soc(Watts::new(tdp)),
            ModelParams::paper_defaults(),
            predictor(),
            RuntimeConfig::default(),
        )
    }

    fn bursty_trace() -> Trace {
        let mut intervals = Vec::new();
        for _ in 0..5 {
            intervals.push(TraceInterval::active(
                Seconds::from_millis(40.0),
                WorkloadType::MultiThread,
                ApplicationRatio::new(0.8).unwrap(),
            ));
            intervals.push(TraceInterval::idle(
                Seconds::from_millis(40.0),
                pdn_proc::PackageCState::C0Min,
            ));
        }
        Trace::new("bursty", intervals)
    }

    #[test]
    fn plan_generation_is_deterministic_and_seed_sensitive() {
        let mix = FaultMix::chaos();
        let a = FaultPlan::generate(42, 64, &mix);
        let b = FaultPlan::generate(42, 64, &mix);
        let c = FaultPlan::generate(43, 64, &mix);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must give different schedules");
        assert!(!a.is_empty(), "chaos mix over 64 intervals must schedule something");
        assert!(a.events().all(|e| e.interval < 64));
    }

    #[test]
    fn empty_plan_matches_the_clean_run_bitwise() {
        let trace = bursty_trace();
        let clean = runtime(36.0).run(&trace).unwrap();
        let report = runtime(36.0)
            .run_faulted(&trace, &FaultPlan::new(1), &DegradationPolicy::default())
            .unwrap();
        assert_eq!(
            clean.energy_joules.to_bits(),
            report.runtime.energy_joules.to_bits(),
            "no faults => identical energy"
        );
        assert_eq!(clean.switches.len(), report.runtime.switches.len());
        assert_eq!(report.counts, FaultCounts::default());
        assert!(report.invariants.holds(), "{}", report.invariants);
    }

    #[test]
    fn campaigns_are_bit_reproducible() {
        let trace = BatteryLifeWorkload::VideoPlayback.as_trace(10);
        let plan = FaultPlan::generate(7, trace.intervals().len(), &FaultMix::chaos());
        let policy = DegradationPolicy::default();
        let a = runtime(18.0).run_faulted(&trace, &plan, &policy).unwrap();
        let b = runtime(18.0).run_faulted(&trace, &plan, &policy).unwrap();
        assert_eq!(a, b, "same seed + plan must be bit-identical");
        // And independent of the worker pool.
        let c = runtime(18.0).run_faulted_with(&trace, &plan, &policy, Workers::Fixed(4)).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn vin_droop_trips_the_protection_not_the_invariant() {
        // 25 W multi-thread at high AR runs close to the LDO trip margin;
        // a 40 % droop must force IVR-Mode, not an over-trip chunk.
        let rt = runtime(25.0);
        let trace = Trace::new(
            "steady",
            vec![TraceInterval::active(
                Seconds::from_millis(100.0),
                WorkloadType::MultiThread,
                ApplicationRatio::new(0.8).unwrap(),
            )],
        );
        let plan = FaultPlan::new(3).with_event(0, FaultKind::VinDroop { factor: 0.6 });
        let report = rt.run_faulted(&trace, &plan, &DegradationPolicy::default()).unwrap();
        assert_eq!(report.invariants.over_trip_chunks, 0, "{}", report.invariants);
        assert!(report.invariants.holds());
        assert_eq!(report.counts.injected, 1);
        assert_eq!(report.counts.detected, 1);
    }

    #[test]
    fn switch_failures_retry_and_recover() {
        // One failing attempt with a 2-retry budget: the switch must
        // eventually land and count as recovered.
        let rt = runtime(4.0); // boots IVR, immediately wants LDO
        let trace = Trace::new(
            "steady",
            vec![TraceInterval::active(
                Seconds::from_millis(60.0),
                WorkloadType::SingleThread,
                ApplicationRatio::new(0.6).unwrap(),
            )],
        );
        let plan = FaultPlan::new(9).with_event(0, FaultKind::SwitchFailure { attempts: 1 });
        let report = rt.run_faulted(&trace, &plan, &DegradationPolicy::default()).unwrap();
        assert_eq!(report.runtime.switch_failures, 1);
        assert_eq!(report.runtime.switch_retries, 1);
        assert_eq!(report.counts.recovered, 1);
        assert_eq!(report.counts.degraded, 0);
        assert!(!report.watchdog_latched);
        assert!(report.runtime.switches.iter().any(|s| s.to == PdnMode::LdoMode));
        assert!(report.invariants.holds(), "{}", report.invariants);
    }

    #[test]
    fn persistent_switch_failures_latch_the_watchdog_into_ivr_mode() {
        // Every interval's switch flow fails outright: after the
        // watchdog threshold the runtime must latch IVR-Mode and stop
        // oscillating.
        let rt = runtime(4.0); // predictor permanently wants LDO-Mode
        let mut plan = FaultPlan::new(11);
        let mut intervals = Vec::new();
        for i in 0..8 {
            intervals.push(TraceInterval::active(
                Seconds::from_millis(30.0),
                WorkloadType::SingleThread,
                ApplicationRatio::new(0.6).unwrap(),
            ));
            plan = plan.with_event(i, FaultKind::SwitchFailure { attempts: 100 });
        }
        let trace = Trace::new("doomed", intervals);
        let policy = DegradationPolicy::default();
        let report = rt.run_faulted(&trace, &plan, &policy).unwrap();
        assert!(report.watchdog_latched, "watchdog must latch: {:?}", report.counts);
        assert!(report.counts.degraded >= policy.watchdog_threshold as u64);
        // Latched safe mode: the trace ends executing IVR-Mode and no
        // further switch sequences are attempted after the latch.
        assert!(report.runtime.time_in_mode[&PdnMode::IvrMode].get() > 0.0);
        assert!(report.invariants.holds(), "{}", report.invariants);
    }

    #[test]
    fn strict_policy_turns_degradation_into_an_error() {
        let rt = runtime(4.0);
        let trace = Trace::new(
            "steady",
            vec![TraceInterval::active(
                Seconds::from_millis(60.0),
                WorkloadType::SingleThread,
                ApplicationRatio::new(0.6).unwrap(),
            )],
        );
        let plan = FaultPlan::new(5).with_event(0, FaultKind::SwitchFailure { attempts: 100 });
        let err = rt.run_faulted(&trace, &plan, &DegradationPolicy::strict()).unwrap_err();
        assert!(
            matches!(&err, PdnError::Degraded { component, .. }
                if component == "FlexWattsRuntime"),
            "{err}"
        );
    }

    #[test]
    fn sensor_faults_fall_back_to_last_good_readings() {
        let rt = runtime(18.0);
        let mut intervals = Vec::new();
        for _ in 0..6 {
            intervals.push(TraceInterval::active(
                Seconds::from_millis(20.0),
                WorkloadType::MultiThread,
                ApplicationRatio::new(0.6).unwrap(),
            ));
        }
        let trace = Trace::new("steady", intervals);
        // Interval 2: stuck at full scale (a 0.4 jump from ~0.6 truth —
        // implausible); interval 4: telemetry drop.
        let plan = FaultPlan::new(21)
            .with_event(2, FaultKind::SensorStuck { ar: 0.05 })
            .with_event(4, FaultKind::TelemetryDrop);
        let report = rt.run_faulted(&trace, &plan, &DegradationPolicy::default()).unwrap();
        assert_eq!(report.counts.injected, 2);
        assert_eq!(report.counts.detected, 2, "{:?}", report.counts);
        assert_eq!(report.counts.recovered, 2);
        assert!(report.counts.consistent(), "{:?}", report.counts);
        assert!(report.invariants.holds(), "{}", report.invariants);
    }

    #[test]
    fn firmware_bit_flips_are_detected_by_the_crc_and_recovered() {
        let rt = runtime(18.0);
        let trace = Trace::new(
            "steady",
            vec![TraceInterval::active(
                Seconds::from_millis(40.0),
                WorkloadType::MultiThread,
                ApplicationRatio::new(0.6).unwrap(),
            )],
        );
        let plan = FaultPlan::new(33)
            .with_event(0, FaultKind::FirmwareBitFlip { offset: 1234, mask: 0x10 });
        let report = rt.run_faulted(&trace, &plan, &DegradationPolicy::default()).unwrap();
        assert_eq!(report.injected_by_class[&FaultClass::Firmware], 1);
        assert_eq!(report.counts.detected, 1);
        assert_eq!(report.counts.recovered, 1);
        assert_eq!(report.counts.silent, 0);
    }

    #[test]
    fn counts_stay_consistent_under_chaos() {
        let trace = bursty_trace();
        for seed in [1u64, 2, 3] {
            let plan = FaultPlan::generate(seed, trace.intervals().len(), &FaultMix::chaos());
            let report =
                runtime(36.0).run_faulted(&trace, &plan, &DegradationPolicy::default()).unwrap();
            assert!(report.counts.consistent(), "seed {seed}: {:?}", report.counts);
            assert!(report.invariants.holds(), "seed {seed}: {}", report.invariants);
            assert!(report.runtime.energy_efficiency_vs_oracle() <= 1.0 + 1e-12);
        }
    }
}
