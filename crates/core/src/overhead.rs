//! FlexWatts overhead accounting (§6 of the paper).
//!
//! The LDO personality reuses the baseline IVR's high-side NMOS power
//! switch, so the only additional die area is the LDO control circuitry:
//! ≈ 0.041 mm² per hybrid VR at 14 nm (Luria et al.), which is 0.04 % of
//! an Intel dual-core client die and 0.03 % of a quad-core die. The mode
//! switch costs ≈ 94 µs of enforced idleness, well inside the ≈ 500 µs a
//! DVFS P-state transition may take.

use pdn_units::{Seconds, SquareMillimeters};
use serde::{Deserialize, Serialize};

/// Additional die area of the LDO-mode circuitry per hybrid VR at 14 nm
/// (§6: 0.041 mm²).
pub const LDO_MODE_AREA: SquareMillimeters = SquareMillimeters::new(0.041);

/// Intel dual-core client die area at 14 nm (≈ 101 mm², WikiChip).
pub const DUAL_CORE_DIE: SquareMillimeters = SquareMillimeters::new(101.0);

/// Intel quad-core client die area at 14 nm (≈ 122 mm², WikiChip).
pub const QUAD_CORE_DIE: SquareMillimeters = SquareMillimeters::new(122.0);

/// The §6 overhead summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadSummary {
    /// Extra die area for the LDO mode.
    pub die_area: SquareMillimeters,
    /// Die-area overhead as a fraction of the dual-core die.
    pub dual_core_fraction: f64,
    /// Die-area overhead as a fraction of the quad-core die.
    pub quad_core_fraction: f64,
    /// Total mode-switch latency.
    pub switch_latency: Seconds,
}

/// Computes the paper's §6 overhead summary.
pub fn summary() -> OverheadSummary {
    let switch = crate::switchflow::ModeSwitchFlow::new().reference_transition();
    OverheadSummary {
        die_area: LDO_MODE_AREA,
        dual_core_fraction: LDO_MODE_AREA.get() / DUAL_CORE_DIE.get(),
        quad_core_fraction: LDO_MODE_AREA.get() / QUAD_CORE_DIE.get(),
        switch_latency: switch.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_fractions_match_section6() {
        let s = summary();
        // §6: "0.04 % and 0.03 % of the dual and quad core die sizes".
        assert!((s.dual_core_fraction * 100.0 - 0.04).abs() < 0.005);
        assert!((s.quad_core_fraction * 100.0 - 0.03).abs() < 0.005);
    }

    #[test]
    fn switch_latency_matches_section6() {
        let s = summary();
        assert!((s.switch_latency.micros() - 94.0).abs() < 1.0);
    }
}
