//! The hybrid voltage regulator: one on-die device, two personalities.
//!
//! FlexWatts extends each baseline IVR with an LDO implemented from the
//! IVR's *existing* high-side (HS) NMOS power switch, following Luria et
//! al.'s dual-mode regulator/power-gate (§6). Both modes share the HS
//! switch, the package and die decoupling capacitors, and the routing from
//! the off-chip `V_IN` — which is what keeps FlexWatts's cost and area at
//! IVR levels (Fig. 8d,e), at the price of a slightly higher load line.

use crate::topology::PdnMode;
use pdn_units::{Amps, Efficiency, Volts};
use pdn_vr::{
    presets, BuckConverter, LdoRegulator, OperatingPoint, Placement, VoltageRegulator, VrError,
};
use serde::{Deserialize, Serialize};

/// The resources a hybrid VR shares between its two modes (§6, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedResources {
    /// The high-side NMOS power switch of the baseline IVR doubles as the
    /// LDO pass device.
    pub hs_power_switch: bool,
    /// Package and die decoupling capacitors serve both modes.
    pub decoupling_caps: bool,
    /// Board/package/die routing and the off-chip `V_IN` VR are common.
    pub vin_routing: bool,
}

impl SharedResources {
    /// The sharing FlexWatts implements (everything shared).
    pub const FLEXWATTS: SharedResources =
        SharedResources { hs_power_switch: true, decoupling_caps: true, vin_routing: true };
}

/// A hybrid IVR/LDO regulator for one wide-power-range domain.
///
/// # Examples
///
/// ```
/// use flexwatts::{HybridVr, PdnMode};
/// use pdn_units::{Amps, Volts};
/// use pdn_vr::{OperatingPoint, VoltageRegulator};
///
/// let mut vr = HybridVr::new("HVR_Core0");
/// // IVR-Mode: fed at 1.8 V.
/// let op = OperatingPoint::new(Volts::new(1.8), Volts::new(0.7), Amps::new(4.0));
/// let eta_ivr = vr.efficiency(op)?;
/// // LDO-Mode: fed at (near) the domain voltage.
/// vr.set_mode(PdnMode::LdoMode);
/// let op = OperatingPoint::new(Volts::new(0.72), Volts::new(0.7), Amps::new(4.0));
/// let eta_ldo = vr.efficiency(op)?;
/// assert!(eta_ldo.get() > eta_ivr.get(), "bypass beats buck when voltages align");
/// # Ok::<(), pdn_vr::VrError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridVr {
    name: String,
    mode: PdnMode,
    ivr: BuckConverter,
    ldo: LdoRegulator,
}

impl HybridVr {
    /// Creates a hybrid VR in IVR-Mode.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Self { ivr: presets::ivr(&name), ldo: presets::ldo(&name), mode: PdnMode::IvrMode, name }
    }

    /// The active mode.
    pub fn mode(&self) -> PdnMode {
        self.mode
    }

    /// Switches the device personality. In a real part this happens only
    /// inside the package-C6 switch flow; the runtime enforces that.
    pub fn set_mode(&mut self, mode: PdnMode) {
        self.mode = mode;
    }

    /// The resources shared between modes.
    pub fn shared_resources(&self) -> SharedResources {
        SharedResources::FLEXWATTS
    }
}

impl VoltageRegulator for HybridVr {
    fn name(&self) -> &str {
        &self.name
    }

    fn placement(&self) -> Placement {
        Placement::Die
    }

    fn efficiency(&self, op: OperatingPoint) -> Result<Efficiency, VrError> {
        match self.mode {
            PdnMode::IvrMode => self.ivr.efficiency(op),
            PdnMode::LdoMode => self.ldo.efficiency(op),
        }
    }

    fn iccmax(&self) -> Amps {
        // The shared HS switch limits both personalities identically.
        self.ivr.iccmax().min(self.ldo.iccmax())
    }

    fn supports_conversion(&self, vin: Volts, vout: Volts) -> bool {
        match self.mode {
            PdnMode::IvrMode => self.ivr.supports_conversion(vin, vout),
            PdnMode::LdoMode => self.ldo.supports_conversion(vin, vout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_switch_changes_conversion_envelope() {
        let mut vr = HybridVr::new("HVR");
        // IVR-Mode needs 0.6 V headroom; LDO-Mode only needs Vout ≤ Vin.
        assert!(!vr.supports_conversion(Volts::new(0.9), Volts::new(0.85)));
        vr.set_mode(PdnMode::LdoMode);
        assert!(vr.supports_conversion(Volts::new(0.9), Volts::new(0.85)));
        assert_eq!(vr.mode(), PdnMode::LdoMode);
    }

    #[test]
    fn ldo_mode_deep_regulation_is_inefficient() {
        let mut vr = HybridVr::new("HVR");
        vr.set_mode(PdnMode::LdoMode);
        let op = OperatingPoint::new(Volts::new(0.9), Volts::new(0.5), Amps::new(2.0));
        let eta = vr.efficiency(op).unwrap();
        assert!(eta.get() < 0.58);
    }

    #[test]
    fn shared_switch_limits_both_modes() {
        let vr = HybridVr::new("HVR");
        assert!(vr.iccmax().get() <= 40.0);
        assert_eq!(vr.shared_resources(), SharedResources::FLEXWATTS);
        assert!(vr.shared_resources().hs_power_switch);
    }
}
