//! Streaming, checkpointed, crash-resumable trace replay.
//!
//! [`FlexWattsRuntime::run`] materialises a whole `Trace` in memory;
//! real-scale trace files (millions of intervals) stream instead: a
//! bounded-memory [`TraceReader`] feeds batches through the same serial
//! replay loop `run` uses, and a [`ReplayCheckpoint`] written with the
//! crash-safe tmp + fsync + rename discipline (the PR 6 snapshot rule)
//! captures the complete replay state between intervals. A replay killed
//! at any point resumes from its last checkpoint and finishes with a
//! [`RuntimeReport`] **bitwise equal** to the uninterrupted run's: the
//! checkpoint stores every accumulator as raw `f64` bits, the sensor
//! bank's sample counter, and the mode/hysteresis state, so the resumed
//! run performs exactly the floating-point operations the cold run
//! would.
//!
//! Checkpoints are fingerprint-bound: an FNV-64 of the trace-file
//! header and one of the runtime configuration are stored inside, and a
//! checkpoint that does not match both is ignored (cold start) — a
//! stale or foreign checkpoint can never corrupt a replay. A damaged
//! checkpoint file likewise degrades to a cold start, never a panic.

use crate::runtime::{FlexWattsRuntime, ReplayState, RuntimeReport};
use crate::switchflow::SwitchTransition;
use crate::topology::PdnMode;
use pdn_pmu::{ActivitySensorBank, CStateDriver};
use pdn_units::Seconds;
use pdn_workload::tracefile::{
    crc32, fnv1a64, DefectCounts, DefectPolicy, TraceFileError, TraceReader,
};
use pdn_workload::TraceInterval;
use pdnspot::batch::{par_map, Workers};
use pdnspot::PdnError;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Checkpoint file magic: `"PDNC"`.
pub const CHECKPOINT_MAGIC: u32 = u32::from_le_bytes(*b"PDNC");
/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Fixed-size part of a checkpoint payload (everything before the
/// switch list).
const FIXED_LEN: usize = 8 /* magic+version+reserved */
    + 8 * 4  /* fingerprints, intervals_done, sensor_samples */
    + 1      /* mode */
    + 8 * 4  /* energy, oracle, total_time, since_eval */
    + 8 * 3  /* evaluations, correct, overrides */
    + 8 * 2  /* time_in_mode */
    + 8 * 2  /* driver transitions + transition time */
    + 4; /* switch count */
/// Encoded size of one switch record.
const SWITCH_LEN: usize = 2 + 8 * 3;

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be loaded or used. Every variant degrades
/// to a cold start — none is fatal to the replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointDefect {
    /// The file could not be read at all.
    Unreadable(io::ErrorKind),
    /// Fewer bytes than the declared structure.
    Truncated,
    /// The leading magic is not `PDNC`.
    BadMagic(u32),
    /// A version this build does not speak.
    UnsupportedVersion(u16),
    /// The CRC-32 trailer does not match the body.
    ChecksumMismatch {
        /// CRC the trailer declares.
        expected: u32,
        /// CRC computed over the body.
        found: u32,
    },
    /// Structurally inconsistent content.
    Malformed(&'static str),
    /// The checkpoint belongs to a different trace file or runtime
    /// configuration.
    Mismatch(&'static str),
}

impl fmt::Display for CheckpointDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointDefect::Unreadable(kind) => write!(f, "checkpoint unreadable: {kind:?}"),
            CheckpointDefect::Truncated => f.write_str("checkpoint truncated"),
            CheckpointDefect::BadMagic(m) => write!(f, "checkpoint bad magic {m:#010x}"),
            CheckpointDefect::UnsupportedVersion(v) => {
                write!(f, "checkpoint version {v} unsupported")
            }
            CheckpointDefect::ChecksumMismatch { expected, found } => {
                write!(f, "checkpoint checksum mismatch ({expected:#010x} vs {found:#010x})")
            }
            CheckpointDefect::Malformed(what) => write!(f, "checkpoint malformed: {what}"),
            CheckpointDefect::Mismatch(which) => {
                write!(f, "checkpoint belongs to a different {which}")
            }
        }
    }
}

impl std::error::Error for CheckpointDefect {}

/// The complete replay state between two intervals, ready to persist.
///
/// Floating-point accumulators are carried as exact values and encoded
/// as raw bits, so save → load → resume reproduces the uninterrupted
/// run bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCheckpoint {
    /// FNV-64 of the trace file's header bytes.
    pub trace_fingerprint: u64,
    /// FNV-64 of the runtime configuration (seed, initial mode,
    /// protection, evaluation cadence, TDP).
    pub config_fingerprint: u64,
    /// Intervals fully replayed before this checkpoint.
    pub intervals_done: u64,
    /// Activity-sensor samples drawn so far (the jitter-stream cursor).
    pub sensor_samples: u64,
    /// Current PDN mode.
    pub mode: PdnMode,
    /// Energy ledger (joules).
    pub energy: f64,
    /// Oracle energy ledger (joules).
    pub oracle_energy: f64,
    /// Total simulated time.
    pub total_time: Seconds,
    /// Time since the last predictor evaluation.
    pub since_eval: Seconds,
    /// Predictor evaluations performed.
    pub evaluations: u64,
    /// Predictor decisions matching the oracle.
    pub correct_predictions: u64,
    /// Maximum-current protection overrides fired.
    pub protection_overrides: u64,
    /// Time in each mode, in [`PdnMode::ALL`] order.
    pub time_in_mode: [Seconds; 2],
    /// C-state driver transition count.
    pub driver_transitions: u64,
    /// C-state driver cumulative transition time.
    pub driver_transition_time: Seconds,
    /// Every executed mode switch so far.
    pub switches: Vec<SwitchTransition>,
}

fn mode_tag(mode: PdnMode) -> u8 {
    match mode {
        PdnMode::IvrMode => 0,
        PdnMode::LdoMode => 1,
    }
}

fn decode_mode(tag: u8) -> Option<PdnMode> {
    match tag {
        0 => Some(PdnMode::IvrMode),
        1 => Some(PdnMode::LdoMode),
        _ => None,
    }
}

fn get_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes.get(at..at + 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

impl ReplayCheckpoint {
    /// Serialises the checkpoint (hand-rolled codec; the vendored serde
    /// is a no-op stub), CRC-32-trailed.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FIXED_LEN + self.switches.len() * SWITCH_LEN + 4);
        out.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes()); // reserved
        out.extend_from_slice(&self.trace_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.config_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.intervals_done.to_le_bytes());
        out.extend_from_slice(&self.sensor_samples.to_le_bytes());
        out.push(mode_tag(self.mode));
        out.extend_from_slice(&self.energy.to_bits().to_le_bytes());
        out.extend_from_slice(&self.oracle_energy.to_bits().to_le_bytes());
        out.extend_from_slice(&self.total_time.get().to_bits().to_le_bytes());
        out.extend_from_slice(&self.since_eval.get().to_bits().to_le_bytes());
        out.extend_from_slice(&self.evaluations.to_le_bytes());
        out.extend_from_slice(&self.correct_predictions.to_le_bytes());
        out.extend_from_slice(&self.protection_overrides.to_le_bytes());
        for t in self.time_in_mode {
            out.extend_from_slice(&t.get().to_bits().to_le_bytes());
        }
        out.extend_from_slice(&self.driver_transitions.to_le_bytes());
        out.extend_from_slice(&self.driver_transition_time.get().to_bits().to_le_bytes());
        out.extend_from_slice(&(self.switches.len() as u32).to_le_bytes());
        for s in &self.switches {
            out.push(mode_tag(s.from));
            out.push(mode_tag(s.to));
            out.extend_from_slice(&s.c6_entry.get().to_bits().to_le_bytes());
            out.extend_from_slice(&s.vr_adjust.get().to_bits().to_le_bytes());
            out.extend_from_slice(&s.c6_exit.get().to_bits().to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a checkpoint, verifying structure and CRC. Never panics
    /// on arbitrary bytes.
    ///
    /// # Errors
    ///
    /// A typed [`CheckpointDefect`] describing the first problem found.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointDefect> {
        if bytes.len() < FIXED_LEN + 4 {
            return Err(CheckpointDefect::Truncated);
        }
        let magic = get_u32(bytes, 0).ok_or(CheckpointDefect::Truncated)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(CheckpointDefect::BadMagic(magic));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointDefect::UnsupportedVersion(version));
        }
        let body_len = bytes.len() - 4;
        let declared_crc = get_u32(bytes, body_len).ok_or(CheckpointDefect::Truncated)?;
        let actual_crc = crc32(&bytes[..body_len]);
        if declared_crc != actual_crc {
            return Err(CheckpointDefect::ChecksumMismatch {
                expected: declared_crc,
                found: actual_crc,
            });
        }
        let mut at = 8;
        let read_u64 = |at: &mut usize| -> Result<u64, CheckpointDefect> {
            let v = get_u64(bytes, *at).ok_or(CheckpointDefect::Truncated)?;
            *at += 8;
            Ok(v)
        };
        let trace_fingerprint = read_u64(&mut at)?;
        let config_fingerprint = read_u64(&mut at)?;
        let intervals_done = read_u64(&mut at)?;
        let sensor_samples = read_u64(&mut at)?;
        let mode_byte = *bytes.get(at).ok_or(CheckpointDefect::Truncated)?;
        at += 1;
        let mode = decode_mode(mode_byte).ok_or(CheckpointDefect::Malformed("mode tag"))?;
        let energy = f64::from_bits(read_u64(&mut at)?);
        let oracle_energy = f64::from_bits(read_u64(&mut at)?);
        let total_time = Seconds::new(f64::from_bits(read_u64(&mut at)?));
        let since_eval = Seconds::new(f64::from_bits(read_u64(&mut at)?));
        let evaluations = read_u64(&mut at)?;
        let correct_predictions = read_u64(&mut at)?;
        let protection_overrides = read_u64(&mut at)?;
        let time_in_mode = [
            Seconds::new(f64::from_bits(read_u64(&mut at)?)),
            Seconds::new(f64::from_bits(read_u64(&mut at)?)),
        ];
        let driver_transitions = read_u64(&mut at)?;
        let driver_transition_time = Seconds::new(f64::from_bits(read_u64(&mut at)?));
        let count = get_u32(bytes, at).ok_or(CheckpointDefect::Truncated)? as usize;
        at += 4;
        if body_len != at + count * SWITCH_LEN {
            return Err(CheckpointDefect::Malformed("switch list length"));
        }
        let mut switches = Vec::with_capacity(count);
        for _ in 0..count {
            let from = decode_mode(*bytes.get(at).ok_or(CheckpointDefect::Truncated)?)
                .ok_or(CheckpointDefect::Malformed("switch from tag"))?;
            let to = decode_mode(*bytes.get(at + 1).ok_or(CheckpointDefect::Truncated)?)
                .ok_or(CheckpointDefect::Malformed("switch to tag"))?;
            let mut field = at + 2;
            let c6_entry = Seconds::new(f64::from_bits(read_u64(&mut field)?));
            let vr_adjust = Seconds::new(f64::from_bits(read_u64(&mut field)?));
            let c6_exit = Seconds::new(f64::from_bits(read_u64(&mut field)?));
            switches.push(SwitchTransition { from, to, c6_entry, vr_adjust, c6_exit });
            at += SWITCH_LEN;
        }
        Ok(Self {
            trace_fingerprint,
            config_fingerprint,
            intervals_done,
            sensor_samples,
            mode,
            energy,
            oracle_energy,
            total_time,
            since_eval,
            evaluations,
            correct_predictions,
            protection_overrides,
            time_in_mode,
            driver_transitions,
            driver_transition_time,
            switches,
        })
    }

    /// Persists the checkpoint crash-safely: unique tmp file, full
    /// write, `fsync`, atomic rename over the destination, best-effort
    /// parent-directory `fsync` — a crash mid-save leaves either the
    /// old checkpoint or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Any I/O failure along that sequence.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let bytes = self.encode();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, path) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    /// Loads and decodes a checkpoint file.
    ///
    /// # Errors
    ///
    /// A typed [`CheckpointDefect`]; callers treat any of them as a
    /// cold start.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointDefect> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| CheckpointDefect::Unreadable(e.kind()))?;
        Self::decode(&bytes)
    }
}

/// FNV-64 fingerprint of everything that shapes a replay's arithmetic:
/// sensor seed, boot mode, protection flag, evaluation cadence, and the
/// SoC's TDP. Two runtimes with equal fingerprints replay a trace
/// identically, so a checkpoint from one resumes on the other.
pub fn runtime_fingerprint(rt: &FlexWattsRuntime) -> u64 {
    let mut bytes = Vec::with_capacity(26);
    bytes.extend_from_slice(&rt.config.sensor_seed.to_le_bytes());
    bytes.push(mode_tag(rt.config.initial_mode));
    bytes.push(u8::from(rt.config.max_current_protection));
    bytes.extend_from_slice(&rt.predictor.evaluation_interval().get().to_bits().to_le_bytes());
    bytes.extend_from_slice(&rt.soc.tdp.get().to_bits().to_le_bytes());
    fnv1a64(&bytes)
}

// ---------------------------------------------------------------------------
// Replayer
// ---------------------------------------------------------------------------

/// Incremental trace replayer: feed interval batches, checkpoint
/// between them, seal into a [`RuntimeReport`].
///
/// Batches fan the pure per-interval preparation out on the batch
/// engine ([`Workers`]); the stateful pass replays serially in order,
/// so the report is bit-identical for any worker count — and, because
/// it owns a dedicated sensor bank whose cursor is checkpointed, a
/// resumed replayer continues the exact jitter stream of the original.
#[derive(Debug)]
pub struct TraceReplayer<'rt> {
    rt: &'rt FlexWattsRuntime,
    sensors: ActivitySensorBank,
    state: ReplayState,
    workers: Workers,
    intervals_done: u64,
}

impl<'rt> TraceReplayer<'rt> {
    /// A cold replayer at the runtime's boot state.
    pub fn new(rt: &'rt FlexWattsRuntime, workers: Workers) -> Self {
        Self {
            sensors: ActivitySensorBank::resume(rt.config.sensor_seed, 0),
            state: ReplayState::new(rt),
            workers,
            intervals_done: 0,
            rt,
        }
    }

    /// Restores a replayer from a checkpoint.
    ///
    /// # Errors
    ///
    /// [`CheckpointDefect::Mismatch`] when the checkpoint was taken
    /// under a different runtime configuration.
    pub fn resume(
        rt: &'rt FlexWattsRuntime,
        workers: Workers,
        checkpoint: &ReplayCheckpoint,
    ) -> Result<Self, CheckpointDefect> {
        if checkpoint.config_fingerprint != runtime_fingerprint(rt) {
            return Err(CheckpointDefect::Mismatch("runtime configuration"));
        }
        let mut state = ReplayState::new(rt);
        state.mode = checkpoint.mode;
        state.energy = checkpoint.energy;
        state.oracle_energy = checkpoint.oracle_energy;
        state.total_time = checkpoint.total_time;
        state.since_eval = checkpoint.since_eval;
        state.evaluations = checkpoint.evaluations;
        state.correct_predictions = checkpoint.correct_predictions;
        state.protection_overrides = checkpoint.protection_overrides;
        for (mode, t) in PdnMode::ALL.into_iter().zip(checkpoint.time_in_mode) {
            state.time_in_mode.insert(mode, t);
        }
        state.driver =
            CStateDriver::resume(checkpoint.driver_transitions, checkpoint.driver_transition_time);
        state.switches = checkpoint.switches.clone();
        Ok(Self {
            sensors: ActivitySensorBank::resume(rt.config.sensor_seed, checkpoint.sensor_samples),
            state,
            workers,
            intervals_done: checkpoint.intervals_done,
            rt,
        })
    }

    /// Intervals fully replayed so far.
    pub fn intervals_done(&self) -> u64 {
        self.intervals_done
    }

    /// Replays a batch: pure preparation fans out in parallel, the
    /// stateful pass runs serially in order.
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors.
    pub fn feed(&mut self, intervals: &[TraceInterval]) -> Result<(), PdnError> {
        let prepared = par_map(intervals, self.workers, |_, interval| {
            self.rt.prepare_interval(interval.phase)
        });
        for (interval, prep) in intervals.iter().zip(prepared) {
            let prep = prep?;
            self.state.step(self.rt, &self.sensors, interval, &prep)?;
            self.intervals_done += 1;
        }
        Ok(())
    }

    /// Snapshots the complete replay state, bound to a trace file's
    /// header fingerprint.
    pub fn checkpoint(&self, trace_fingerprint: u64) -> ReplayCheckpoint {
        ReplayCheckpoint {
            trace_fingerprint,
            config_fingerprint: runtime_fingerprint(self.rt),
            intervals_done: self.intervals_done,
            sensor_samples: self.sensors.samples_taken(),
            mode: self.state.mode,
            energy: self.state.energy,
            oracle_energy: self.state.oracle_energy,
            total_time: self.state.total_time,
            since_eval: self.state.since_eval,
            evaluations: self.state.evaluations,
            correct_predictions: self.state.correct_predictions,
            protection_overrides: self.state.protection_overrides,
            time_in_mode: [
                self.state.time_in_mode[&PdnMode::ALL[0]],
                self.state.time_in_mode[&PdnMode::ALL[1]],
            ],
            driver_transitions: self.state.driver.transitions(),
            driver_transition_time: self.state.driver.total_transition_time(),
            switches: self.state.switches.clone(),
        }
    }

    /// Seals the replay into a report.
    pub fn finish(self) -> RuntimeReport {
        self.state.finish()
    }
}

// ---------------------------------------------------------------------------
// File replay
// ---------------------------------------------------------------------------

/// Errors from a streaming file replay.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace file could not be read (I/O, damaged header, or a
    /// defect under the strict policy).
    Trace(TraceFileError),
    /// A PDN evaluation failed.
    Pdn(PdnError),
    /// A checkpoint could not be *saved* (loads never fail a replay —
    /// they degrade to a cold start).
    Checkpoint(io::Error),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "trace replay failed: {e}"),
            ReplayError::Pdn(e) => write!(f, "trace replay evaluation failed: {e}"),
            ReplayError::Checkpoint(e) => write!(f, "checkpoint save failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Trace(e) => Some(e),
            ReplayError::Pdn(e) => Some(e),
            ReplayError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<TraceFileError> for ReplayError {
    fn from(e: TraceFileError) -> Self {
        ReplayError::Trace(e)
    }
}

impl From<PdnError> for ReplayError {
    fn from(e: PdnError) -> Self {
        ReplayError::Pdn(e)
    }
}

/// Periodic checkpointing plan for [`replay_trace_file`].
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// Where the checkpoint lives.
    pub path: PathBuf,
    /// Write a checkpoint after at least this many intervals since the
    /// last one (0 disables periodic writes).
    pub every_intervals: u64,
    /// Try to resume from an existing checkpoint at `path`. Any
    /// problem with it — damage, wrong trace, wrong configuration —
    /// silently degrades to a cold start.
    pub resume: bool,
}

/// Options for [`replay_trace_file`].
#[derive(Debug, Clone)]
pub struct ReplayFileOptions {
    /// Worker pool for the pure preparation fan-out (the report is
    /// bit-identical for any choice).
    pub workers: Workers,
    /// What to do about damaged chunks.
    pub policy: DefectPolicy,
    /// Intervals per prepare/replay batch (bounds memory).
    pub batch_intervals: usize,
    /// Optional periodic checkpointing.
    pub checkpoint: Option<CheckpointPlan>,
}

impl Default for ReplayFileOptions {
    fn default() -> Self {
        Self {
            workers: Workers::Auto,
            policy: DefectPolicy::Quarantine,
            batch_intervals: 4096,
            checkpoint: None,
        }
    }
}

/// The outcome of a streaming file replay: the runtime report plus the
/// reader's defect accounting and the checkpoint/resume bookkeeping.
#[derive(Debug, Clone)]
pub struct FileReplayReport {
    /// The runtime report (bitwise equal to an in-memory
    /// [`FlexWattsRuntime::run`] of the same intervals).
    pub report: RuntimeReport,
    /// The trace name from the file header.
    pub trace_name: String,
    /// Per-kind defect counts encountered by the reader.
    pub defects: DefectCounts,
    /// Intervals decoded and replayed.
    pub intervals_replayed: u64,
    /// Intervals known lost to quarantined frames.
    pub intervals_lost: u64,
    /// Chunks quarantined.
    pub chunks_quarantined: u64,
    /// `Some(n)` when the replay resumed from a checkpoint taken after
    /// `n` intervals.
    pub resumed_from: Option<u64>,
    /// Checkpoints written during this replay.
    pub checkpoints_written: u64,
}

/// Streams a trace file through the runtime with bounded memory,
/// optionally checkpointing and resuming.
///
/// The resumed half of an interrupted replay re-reads the file from the
/// start (re-accounting defects exactly as a cold run would) but skips
/// the already-replayed intervals, so the final [`FileReplayReport`] —
/// report, defect counts, everything — is bitwise equal to an
/// uninterrupted replay.
///
/// # Errors
///
/// [`ReplayError::Trace`] on I/O or (strict policy) decode defects,
/// [`ReplayError::Pdn`] on evaluation failures, and
/// [`ReplayError::Checkpoint`] when a checkpoint cannot be saved.
pub fn replay_trace_file(
    rt: &FlexWattsRuntime,
    path: impl AsRef<Path>,
    options: &ReplayFileOptions,
) -> Result<FileReplayReport, ReplayError> {
    let path = path.as_ref();
    let mut reader = TraceReader::open(path, options.policy)?;
    let trace_fingerprint = reader.fingerprint();

    let mut replayer = TraceReplayer::new(rt, options.workers);
    let mut resumed_from = None;
    if let Some(plan) = &options.checkpoint {
        if plan.resume {
            if let Some((restored, skip)) =
                try_resume(rt, options.workers, &plan.path, trace_fingerprint)
            {
                // Skip what the checkpoint already replayed; if the file
                // got shorter than the checkpoint claims, fall back to a
                // cold start on a fresh reader.
                if reader.skip_intervals(skip)? == skip {
                    replayer = restored;
                    resumed_from = Some(skip);
                } else {
                    reader = TraceReader::open(path, options.policy)?;
                    replayer = TraceReplayer::new(rt, options.workers);
                }
            }
        }
    }

    let batch_size = options.batch_intervals.max(1);
    let mut batch = Vec::with_capacity(batch_size);
    let mut checkpoints_written = 0u64;
    let mut last_checkpoint = resumed_from.unwrap_or(0);
    loop {
        batch.clear();
        while batch.len() < batch_size {
            match reader.next_interval()? {
                Some(interval) => batch.push(interval),
                None => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        replayer.feed(&batch)?;
        if let Some(plan) = &options.checkpoint {
            if plan.every_intervals > 0
                && replayer.intervals_done() - last_checkpoint >= plan.every_intervals
            {
                replayer
                    .checkpoint(trace_fingerprint)
                    .save(&plan.path)
                    .map_err(ReplayError::Checkpoint)?;
                last_checkpoint = replayer.intervals_done();
                checkpoints_written += 1;
            }
        }
    }

    let intervals_replayed = reader.intervals_emitted();
    Ok(FileReplayReport {
        report: replayer.finish(),
        trace_name: reader.header().name.clone(),
        defects: *reader.defects(),
        intervals_replayed,
        intervals_lost: reader.intervals_lost(),
        chunks_quarantined: reader.chunks_quarantined(),
        resumed_from,
        checkpoints_written,
    })
}

/// Loads and verifies a checkpoint for resuming; `None` = cold start.
fn try_resume<'rt>(
    rt: &'rt FlexWattsRuntime,
    workers: Workers,
    path: &Path,
    trace_fingerprint: u64,
) -> Option<(TraceReplayer<'rt>, u64)> {
    let checkpoint = ReplayCheckpoint::load(path).ok()?;
    if checkpoint.trace_fingerprint != trace_fingerprint {
        return None;
    }
    let skip = checkpoint.intervals_done;
    let replayer = TraceReplayer::resume(rt, workers, &checkpoint).ok()?;
    Some((replayer, skip))
}

impl FlexWattsRuntime {
    /// Streams a trace file through the runtime — the bounded-memory
    /// counterpart of [`FlexWattsRuntime::run`]. See
    /// [`replay_trace_file`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace_file`].
    pub fn run_streaming(
        &self,
        path: impl AsRef<Path>,
        options: &ReplayFileOptions,
    ) -> Result<FileReplayReport, ReplayError> {
        replay_trace_file(self, path, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::ModePredictor;
    use crate::runtime::RuntimeConfig;
    use pdn_proc::client_soc;
    use pdn_units::Watts;
    use pdn_workload::tracefile::write_trace_chunked;
    use pdn_workload::zoo;
    use pdnspot::ModelParams;

    fn runtime(tdp: f64) -> FlexWattsRuntime {
        let predictor = ModePredictor::train(
            &ModelParams::paper_defaults(),
            &[4.0, 10.0, 18.0, 25.0, 50.0],
            &[0.4, 0.6, 0.8],
        )
        .unwrap();
        FlexWattsRuntime::new(
            client_soc(Watts::new(tdp)),
            ModelParams::paper_defaults(),
            predictor,
            RuntimeConfig::default(),
        )
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexwatts-replay-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn reports_bitwise_equal(a: &RuntimeReport, b: &RuntimeReport) -> bool {
        a.energy_joules.to_bits() == b.energy_joules.to_bits()
            && a.oracle_energy_joules.to_bits() == b.oracle_energy_joules.to_bits()
            && a.total_time.get().to_bits() == b.total_time.get().to_bits()
            && a.prediction_accuracy.to_bits() == b.prediction_accuracy.to_bits()
            && a.switches == b.switches
            && a.time_in_mode == b.time_in_mode
            && a.predictor_evaluations == b.predictor_evaluations
            && a.protection_overrides == b.protection_overrides
    }

    #[test]
    fn streaming_replay_matches_in_memory_run_bitwise() {
        let dir = temp_dir("stream");
        let trace = zoo::zoo_mix(5, 30);
        let path = dir.join("mix.pdnt");
        write_trace_chunked(&path, &trace, 32).unwrap();

        let rt = runtime(18.0);
        // run() consumes the runtime's shared sensor bank from sample 0;
        // the streaming replayer owns a fresh bank with the same seed,
        // so both see the identical jitter stream.
        let in_memory = rt.run(&trace).unwrap();
        let streamed = rt
            .run_streaming(&path, &ReplayFileOptions { batch_intervals: 17, ..Default::default() })
            .unwrap();
        assert!(reports_bitwise_equal(&in_memory, &streamed.report));
        assert_eq!(streamed.intervals_replayed, 120);
        assert_eq!(streamed.defects.total(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let dir = temp_dir("roundtrip");
        let trace = zoo::zoo_mix(9, 20);
        let path = dir.join("mix.pdnt");
        write_trace_chunked(&path, &trace, 16).unwrap();
        let rt = runtime(18.0);

        let mut replayer = TraceReplayer::new(&rt, Workers::Serial);
        replayer.feed(&trace.intervals()[..50]).unwrap();
        let cp = replayer.checkpoint(0xDEAD_BEEF);
        let decoded = ReplayCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(decoded, cp);

        let cp_path = dir.join("replay.pdnc");
        cp.save(&cp_path).unwrap();
        assert_eq!(ReplayCheckpoint::load(&cp_path).unwrap(), cp);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_replay_resumes_bit_identical() {
        let dir = temp_dir("resume");
        let trace = zoo::zoo_mix(3, 40);
        let path = dir.join("mix.pdnt");
        write_trace_chunked(&path, &trace, 32).unwrap();
        let rt = runtime(18.0);

        let cold = rt.run_streaming(&path, &ReplayFileOptions::default()).unwrap();

        // Simulate a crash: replay 70 intervals with a checkpoint every
        // 25, then drop the replayer on the floor.
        let cp_path = dir.join("replay.pdnc");
        {
            let mut reader = TraceReader::open(&path, DefectPolicy::Quarantine).unwrap();
            let fp = reader.fingerprint();
            let mut replayer = TraceReplayer::new(&rt, Workers::Fixed(3));
            let mut fed = Vec::new();
            for _ in 0..70 {
                fed.push(reader.next_interval().unwrap().unwrap());
                if fed.len() == 25 {
                    replayer.feed(&fed).unwrap();
                    fed.clear();
                    replayer.checkpoint(fp).save(&cp_path).unwrap();
                }
            }
            replayer.feed(&fed).unwrap();
            // ...crash: no finish, no final checkpoint.
        }

        let resumed = rt
            .run_streaming(
                &path,
                &ReplayFileOptions {
                    checkpoint: Some(CheckpointPlan {
                        path: cp_path.clone(),
                        every_intervals: 25,
                        resume: true,
                    }),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(resumed.resumed_from, Some(50), "two checkpoints landed before the crash");
        assert!(
            reports_bitwise_equal(&cold.report, &resumed.report),
            "resumed replay must be bitwise equal to the uninterrupted one"
        );
        assert_eq!(resumed.intervals_replayed, cold.intervals_replayed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_or_foreign_checkpoints_degrade_to_cold_start() {
        let dir = temp_dir("degrade");
        let trace = zoo::zoo_mix(7, 15);
        let path = dir.join("mix.pdnt");
        write_trace_chunked(&path, &trace, 16).unwrap();
        let rt = runtime(18.0);
        let cp_path = dir.join("replay.pdnc");

        let options = ReplayFileOptions {
            checkpoint: Some(CheckpointPlan {
                path: cp_path.clone(),
                every_intervals: 0,
                resume: true,
            }),
            ..Default::default()
        };
        let cold = rt.run_streaming(&path, &options).unwrap();
        assert_eq!(cold.resumed_from, None, "no checkpoint file yet");

        // A checkpoint bound to a *different* trace fingerprint.
        let mut replayer = TraceReplayer::new(&rt, Workers::Serial);
        replayer.feed(&trace.intervals()[..10]).unwrap();
        replayer.checkpoint(0x1234).save(&cp_path).unwrap();
        let run = rt.run_streaming(&path, &options).unwrap();
        assert_eq!(run.resumed_from, None, "foreign checkpoint must be ignored");
        assert!(reports_bitwise_equal(&cold.report, &run.report));

        // Bit-flipped checkpoint bytes.
        let fp = TraceReader::open(&path, DefectPolicy::Quarantine).unwrap().fingerprint();
        let mut replayer = TraceReplayer::new(&rt, Workers::Serial);
        replayer.feed(&trace.intervals()[..10]).unwrap();
        let mut bytes = replayer.checkpoint(fp).encode();
        bytes[FIXED_LEN / 2] ^= 0x10;
        std::fs::write(&cp_path, &bytes).unwrap();
        let run = rt.run_streaming(&path, &options).unwrap();
        assert_eq!(run.resumed_from, None, "damaged checkpoint must be ignored");
        assert!(reports_bitwise_equal(&cold.report, &run.report));

        // Truncated / garbage files never panic.
        for garbage in [&b""[..], &b"PDNC"[..], &[0xFF; 64][..]] {
            std::fs::write(&cp_path, garbage).unwrap();
            let run = rt.run_streaming(&path, &options).unwrap();
            assert_eq!(run.resumed_from, None);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_decode_never_panics_on_mutations() {
        let rt = runtime(18.0);
        let trace = zoo::zoo_mix(2, 10);
        let mut replayer = TraceReplayer::new(&rt, Workers::Serial);
        replayer.feed(trace.intervals()).unwrap();
        let bytes = replayer.checkpoint(1).encode();
        for cut in 0..bytes.len() {
            let _ = ReplayCheckpoint::decode(&bytes[..cut]);
        }
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xA5;
            let _ = ReplayCheckpoint::decode(&mutated);
        }
    }

    #[test]
    fn quarantined_file_still_replays_with_accounting() {
        use pdn_workload::tracefile::{encode_trace, frame_spans, DefectKind, FrameKind};
        let dir = temp_dir("quarantine");
        let trace = zoo::zoo_mix(4, 32); // 128 intervals
        let mut bytes = encode_trace(&trace, 16).unwrap();
        let spans = frame_spans(&bytes).unwrap();
        let chunk = spans.iter().filter(|s| s.kind == FrameKind::Chunk).nth(2).unwrap();
        bytes[chunk.offset + 24] ^= 0x08;
        let path = dir.join("poisoned.pdnt");
        std::fs::write(&path, &bytes).unwrap();

        let rt = runtime(18.0);
        let report = rt.run_streaming(&path, &ReplayFileOptions::default()).unwrap();
        assert_eq!(report.chunks_quarantined, 1);
        assert_eq!(report.intervals_lost, 16);
        assert_eq!(report.intervals_replayed, 112);
        assert_eq!(report.defects.count(DefectKind::ChecksumMismatch), 1);
        assert!(report.report.energy_joules > 0.0);

        // Strict policy refuses the same file.
        let strict = rt.run_streaming(
            &path,
            &ReplayFileOptions { policy: DefectPolicy::Strict, ..Default::default() },
        );
        assert!(matches!(strict, Err(ReplayError::Trace(TraceFileError::Defect(_)))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
