//! FlexWatts: a power- and workload-aware hybrid adaptive power delivery
//! network for energy-efficient client processors.
//!
//! This crate implements the paper's primary contribution (§6): a hybrid
//! PDN that combines on-die IVRs and LDOs over *shared* on-chip and
//! off-chip resources, switching between two modes at runtime:
//!
//! * **IVR-Mode** — the board `V_IN` VR outputs ≈ 1.8 V and the on-die
//!   hybrid regulators buck-convert it per domain (efficient at high
//!   power: low chip input current, low I²R);
//! * **LDO-Mode** — `V_IN` outputs the maximum compute voltage and the
//!   hybrid regulators act as LDOs/bypass switches (efficient at low
//!   power: one conversion stage).
//!
//! Components:
//!
//! * [`hybrid::HybridVr`] — the dual-personality regulator sharing the
//!   high-side NMOS power switch and decoupling between both modes;
//! * [`topology::FlexWattsPdn`] — the PDN model, implementing PDNspot's
//!   [`pdnspot::Pdn`] trait for either mode (SA/IO stay on dedicated
//!   board rails, like the LDO PDN);
//! * [`predictor::ModePredictor`] — Algorithm 1: firmware ETEE tables for
//!   both modes, indexed by (TDP, AR, workload type, power state);
//! * [`switchflow::ModeSwitchFlow`] — the voltage-noise-free mode switch
//!   built on the package-C6 flow (≈ 94 µs end to end);
//! * [`runtime::FlexWattsRuntime`] — the interval simulator tying PMU
//!   sensors, predictor, switch flow, and PDNspot energy accounting
//!   together over workload traces;
//! * [`faults`] — a seeded, deterministic fault-injection harness with a
//!   graceful-degradation contract (retry/backoff, last-good sensor
//!   fallback, safe-mode watchdog) layered over the runtime;
//! * [`overhead`] — the §6 area/latency overhead accounting.
//!
//! # Examples
//!
//! ```
//! use flexwatts::{FlexWattsPdn, PdnMode};
//! use pdn_units::{ApplicationRatio, Watts};
//! use pdn_workload::WorkloadType;
//! use pdnspot::{ModelParams, Pdn, Scenario};
//!
//! let params = ModelParams::paper_defaults();
//! let soc = pdn_proc::client_soc(Watts::new(4.0));
//! let s = Scenario::active_fixed_tdp_frequency(
//!     &soc,
//!     WorkloadType::SingleThread,
//!     ApplicationRatio::new(0.6)?,
//! )?;
//! // At 4 W, LDO-Mode clearly beats IVR-Mode (§7.1).
//! let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode).evaluate(&s)?;
//! let ivr = FlexWattsPdn::new(params, PdnMode::IvrMode).evaluate(&s)?;
//! assert!(ldo.etee.get() > ivr.etee.get() + 0.04);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod faults;
pub mod hybrid;
pub mod overhead;
pub mod predictor;
pub mod protection;
pub mod replay;
pub mod runtime;
pub mod switchflow;
pub mod topology;

pub use faults::{
    DegradationPolicy, FaultCampaignReport, FaultClass, FaultCounts, FaultEvent, FaultKind,
    FaultMix, FaultPlan, InvariantReport,
};
pub use hybrid::HybridVr;
pub use predictor::{ModePredictor, PredictorInputs};
pub use protection::MaxCurrentProtection;
pub use replay::{
    replay_trace_file, CheckpointDefect, CheckpointPlan, FileReplayReport, ReplayCheckpoint,
    ReplayError, ReplayFileOptions, TraceReplayer,
};
pub use runtime::{FlexWattsRuntime, RuntimeConfig, RuntimeReport};
pub use switchflow::{ModeSwitchFlow, SwitchTransition};
pub use topology::{FlexWattsAuto, FlexWattsPdn, PdnMode};
