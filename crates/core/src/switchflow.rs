//! The voltage-noise-free mode-switching flow (§6 of the paper).
//!
//! Switching the hybrid PDN between IVR-Mode and LDO-Mode changes the
//! off-chip `V_IN` level drastically (1.8 V ↔ 0.4–1.1 V), so doing it
//! while compute domains draw current would inject voltage noise. The
//! FlexWatts flow therefore reuses the package-C6 power-management flow:
//!
//! 1. the PMU enters package C6 — compute contexts are saved to always-on
//!    SRAM and the compute domains are clock/power-gated (≈ 45 µs);
//! 2. the PMU reconfigures the hybrid VRs and slews the on-chip (≤ 2 µs)
//!    and off-chip (50 mV/µs) regulators to the new mode's levels
//!    (≈ 19 µs for the 1.8 V ↔ ≈ 0.85 V transition);
//! 3. the PMU exits C6 and resumes execution in the new mode (≈ 30 µs).
//!
//! The total ≈ 94 µs is well within the up-to-500 µs latency of a DVFS
//! P-state transition on the same class of processors.

use crate::topology::PdnMode;
use pdn_pmu::CStateDriver;
use pdn_proc::PackageCState;
use pdn_units::{Seconds, Volts};
use serde::{Deserialize, Serialize};

/// The breakdown of one executed mode switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchTransition {
    /// The mode left behind.
    pub from: PdnMode,
    /// The mode entered.
    pub to: PdnMode,
    /// C6 entry latency (context save, gating).
    pub c6_entry: Seconds,
    /// VR reconfiguration latency (on-chip mode flip + off-chip slew).
    pub vr_adjust: Seconds,
    /// C6 exit latency (ungating, context restore).
    pub c6_exit: Seconds,
}

impl SwitchTransition {
    /// Total switch latency (the paper's ≈ 94 µs).
    pub fn total(&self) -> Seconds {
        self.c6_entry + self.vr_adjust + self.c6_exit
    }
}

/// Executes mode switches through the package-C6 flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeSwitchFlow {
    /// Off-chip VR slew rate (§6 cites 50 mV/µs).
    pub offchip_slew_v_per_us: f64,
    /// On-chip hybrid-VR reconfiguration latency (§6: ≤ 2 µs).
    pub onchip_latency: Seconds,
}

impl Default for ModeSwitchFlow {
    fn default() -> Self {
        Self { offchip_slew_v_per_us: 0.050, onchip_latency: Seconds::from_micros(2.0) }
    }
}

impl ModeSwitchFlow {
    /// Creates the paper-default flow.
    pub fn new() -> Self {
        Self::default()
    }

    /// The VR adjustment latency for a `V_IN` change from `v_from` to
    /// `v_to`: the off-chip slew dominates, with the on-chip flip hidden
    /// underneath it.
    pub fn vr_adjust_latency(&self, v_from: Volts, v_to: Volts) -> Seconds {
        let slew_us = (v_to - v_from).abs().get() / self.offchip_slew_v_per_us;
        Seconds::from_micros(slew_us).max(self.onchip_latency)
    }

    /// Executes a mode switch: enters C6 through `driver`, adjusts the
    /// VRs, and exits. The compute domains are guaranteed idle for the
    /// entire VR reconfiguration — the §6 voltage-noise-free property —
    /// because the driver is in C6 between the entry and exit steps.
    ///
    /// Returns the transition breakdown; `driver` ends in the active
    /// state.
    pub fn execute(
        &self,
        from: PdnMode,
        to: PdnMode,
        v_from: Volts,
        v_to: Volts,
        driver: &mut CStateDriver,
    ) -> SwitchTransition {
        // Step 1: park the compute domains.
        let c6_entry = driver.enter(PackageCState::C6);
        debug_assert_eq!(driver.current(), Some(PackageCState::C6));
        // Step 2: reconfigure while provably idle.
        let vr_adjust = self.vr_adjust_latency(v_from, v_to);
        // Step 3: resume in the new mode.
        let c6_exit = driver.exit();
        SwitchTransition { from, to, c6_entry, vr_adjust, c6_exit }
    }

    /// The watchdog budget the PMU grants one VR-reconfiguration step
    /// before declaring the attempt failed: twice the planned slew time
    /// (the slew-rate spec plus an equal margin for settling).
    pub fn attempt_timeout(&self, v_from: Volts, v_to: Volts) -> Seconds {
        self.vr_adjust_latency(v_from, v_to) * 2.0
    }

    /// Executes a mode-switch attempt that *fails* (e.g. the off-chip VR
    /// never acknowledges the new set point — an injected fault): the
    /// package enters C6, the PMU waits out the VR watchdog, slews the
    /// rail back to the old mode's level, and exits C6 with the mode
    /// unchanged. Returns the total time lost to the aborted flow.
    ///
    /// The voltage-noise-free property survives the failure: the compute
    /// domains stay parked in C6 for the whole abort path, so neither the
    /// failed slew nor the roll-back injects noise.
    pub fn execute_aborted(
        &self,
        v_from: Volts,
        v_to: Volts,
        driver: &mut CStateDriver,
    ) -> Seconds {
        let c6_entry = driver.enter(PackageCState::C6);
        debug_assert_eq!(driver.current(), Some(PackageCState::C6));
        // Wait out the watchdog, then roll the rail back.
        let wasted = self.attempt_timeout(v_from, v_to) + self.vr_adjust_latency(v_to, v_from);
        let c6_exit = driver.exit();
        c6_entry + wasted + c6_exit
    }

    /// The paper's reference transition: IVR-Mode (1.8 V) to LDO-Mode at a
    /// mid compute voltage, ≈ 94 µs in total.
    pub fn reference_transition(&self) -> SwitchTransition {
        let mut driver = CStateDriver::new();
        self.execute(
            PdnMode::IvrMode,
            PdnMode::LdoMode,
            Volts::new(1.8),
            Volts::new(0.85),
            &mut driver,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_transition_is_about_94_us() {
        let flow = ModeSwitchFlow::new();
        let t = flow.reference_transition();
        assert!((t.c6_entry.micros() - 45.0).abs() < 1e-9);
        assert!((t.c6_exit.micros() - 30.0).abs() < 1e-9);
        assert!((t.vr_adjust.micros() - 19.0).abs() < 1e-9);
        assert!((t.total().micros() - 94.0).abs() < 1e-9, "total {}", t.total().micros());
    }

    #[test]
    fn small_voltage_deltas_hide_under_the_onchip_flip() {
        let flow = ModeSwitchFlow::new();
        let lat = flow.vr_adjust_latency(Volts::new(0.85), Volts::new(0.90));
        assert_eq!(lat, Seconds::from_micros(2.0), "1 µs slew hides under 2 µs on-chip");
    }

    #[test]
    fn switch_is_within_dvfs_latency_budget() {
        // §6: DVFS transitions take up to 500 µs; the mode switch must be
        // comfortably inside that envelope.
        let t = ModeSwitchFlow::new().reference_transition();
        assert!(t.total().micros() < 500.0);
    }

    #[test]
    fn c6_switching_is_quantitatively_noise_free() {
        use pdn_units::Amps;
        use pdnspot::transient::TransientModel;
        use pdnspot::PdnKind;
        // The §6 guarantee, quantified with the §2.3 transient model: in
        // the C6 flow the compute current during VR reconfiguration is
        // zero, so the injected droop is zero — while a hypothetical hot
        // switch at a 20 A load would blow the noise budget.
        let transient = TransientModel::paper_calibrated(PdnKind::FlexWatts);
        let idle_droop = transient.switch_droop(Amps::ZERO);
        assert_eq!(idle_droop, Volts::ZERO);
        assert!(transient.within_noise_budget(idle_droop, Volts::new(0.85)));
        let hot_droop = transient.switch_droop(Amps::new(20.0));
        assert!(!transient.within_noise_budget(hot_droop, Volts::new(0.85)));
    }

    #[test]
    fn aborted_attempt_costs_more_than_a_clean_switch_and_restores_c0() {
        let flow = ModeSwitchFlow::new();
        let mut driver = CStateDriver::new();
        let lost = flow.execute_aborted(Volts::new(1.8), Volts::new(0.85), &mut driver);
        assert!(driver.current().is_none(), "abort path must end in C0");
        let clean = flow.reference_transition().total();
        assert!(lost > clean, "abort ({lost}) must cost more than a clean switch ({clean})");
        // entry 45 + 2×19 watchdog + 19 roll-back + exit 30 = 132 µs.
        assert!((lost.micros() - 132.0).abs() < 1e-9, "{}", lost.micros());
    }

    #[test]
    fn driver_returns_to_active_and_counts_transitions() {
        let flow = ModeSwitchFlow::new();
        let mut driver = CStateDriver::new();
        let t = flow.execute(
            PdnMode::LdoMode,
            PdnMode::IvrMode,
            Volts::new(0.6),
            Volts::new(1.8),
            &mut driver,
        );
        assert!(driver.current().is_none(), "flow must end in C0");
        assert_eq!(driver.transitions(), 2);
        assert_eq!(t.from, PdnMode::LdoMode);
        assert_eq!(t.to, PdnMode::IvrMode);
        // 1.2 V at 50 mV/µs = 24 µs of slew.
        assert!((t.vr_adjust.micros() - 24.0).abs() < 1e-9);
    }
}
