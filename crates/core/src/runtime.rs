//! The FlexWatts runtime: the closed loop of sensors → predictor → mode
//! switch → power delivery, simulated over workload traces.
//!
//! Every evaluation interval (default 10 ms, §6) the runtime gathers the
//! PMU's estimates (activity-sensor AR, workload type from domain states,
//! package power state, configured TDP), asks the predictor for the best
//! mode, and — when the answer changes — executes the package-C6 switch
//! flow, paying its ≈ 94 µs of enforced idleness. Platform energy is
//! integrated through PDNspot in whichever mode is active.

use crate::predictor::{ModePredictor, PredictorInputs};
use crate::protection::MaxCurrentProtection;
use crate::switchflow::{ModeSwitchFlow, SwitchTransition};
use crate::topology::{FlexWattsPdn, PdnMode};
use pdn_pmu::{classify_workload, ActivitySensorBank, CStateDriver};
use pdn_proc::{DomainKind, DomainTable, PackageCState, SocSpec};
use pdn_units::{Amps, Seconds, Volts, Watts};
use pdn_workload::{Phase, Trace, WorkloadType};
use pdnspot::batch::{par_map, Workers};
use pdnspot::{ModelParams, Pdn, PdnError, Scenario};
use std::collections::BTreeMap;

/// Configuration of a runtime simulation.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Seed for the activity-sensor calibration.
    pub sensor_seed: u64,
    /// The mode the platform boots in.
    pub initial_mode: PdnMode,
    /// Whether the §6 maximum-current protection may override LDO-Mode
    /// decisions (on by default; the shared V_IN rail is sized assuming
    /// it).
    pub max_current_protection: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            sensor_seed: 0x0F1E_2D3C,
            initial_mode: PdnMode::IvrMode,
            max_current_protection: true,
        }
    }
}

/// The outcome of simulating a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeReport {
    /// Total simulated time (including switch idleness).
    pub total_time: Seconds,
    /// Total energy drawn from the battery/PSU, in joules.
    pub energy_joules: f64,
    /// Energy an oracle that always runs the better mode (with free
    /// switches) would have drawn — the predictor-quality baseline.
    pub oracle_energy_joules: f64,
    /// Every executed mode switch.
    pub switches: Vec<SwitchTransition>,
    /// Time spent in each mode.
    pub time_in_mode: BTreeMap<PdnMode, Seconds>,
    /// Number of predictor evaluations performed.
    pub predictor_evaluations: u64,
    /// Fraction of predictor decisions that matched the oracle's mode.
    pub prediction_accuracy: f64,
    /// Number of times the maximum-current protection overrode an
    /// LDO-Mode decision.
    pub protection_overrides: u64,
    /// Mode-switch attempts that failed (always 0 on a clean run; faulted
    /// runs populate it so [`energy_efficiency_vs_oracle`] can be
    /// compared between clean and faulted campaigns).
    ///
    /// [`energy_efficiency_vs_oracle`]: Self::energy_efficiency_vs_oracle
    pub switch_failures: u64,
    /// Retry attempts spent recovering failed mode switches (0 on a clean
    /// run).
    pub switch_retries: u64,
}

impl RuntimeReport {
    /// Average platform power over the trace.
    pub fn average_power(&self) -> Watts {
        if self.total_time.get() <= 0.0 {
            return Watts::ZERO;
        }
        Watts::new(self.energy_joules / self.total_time.get())
    }

    /// Total time lost to mode-switch flows.
    pub fn switch_overhead(&self) -> Seconds {
        self.switches.iter().map(SwitchTransition::total).sum()
    }

    /// How close the runtime's energy came to the oracle's
    /// (1.0 = perfect; the switch overhead and mispredictions cost the
    /// difference).
    pub fn energy_efficiency_vs_oracle(&self) -> f64 {
        if self.energy_joules <= 0.0 {
            return 1.0;
        }
        self.oracle_energy_joules / self.energy_joules
    }
}

/// The pure (order-insensitive) part of one trace interval: the
/// ground-truth scenario, both modes' input powers, the LDO-Mode `V_IN`
/// rail current (what the maximum-current protection watches), and the
/// PMU's domain-state workload classification.
pub(crate) struct PreparedInterval {
    pub(crate) scenario: Scenario,
    pub(crate) power_ivr: Watts,
    pub(crate) power_ldo: Watts,
    pub(crate) vin_ldo: Amps,
    pub(crate) estimated_type: WorkloadType,
}

/// The FlexWatts runtime simulator.
#[derive(Debug)]
pub struct FlexWattsRuntime {
    pub(crate) soc: SocSpec,
    pub(crate) ivr_mode: FlexWattsPdn,
    pub(crate) ldo_mode: FlexWattsPdn,
    pub(crate) predictor: ModePredictor,
    sensors: ActivitySensorBank,
    pub(crate) switch_flow: ModeSwitchFlow,
    pub(crate) protection: MaxCurrentProtection,
    pub(crate) config: RuntimeConfig,
}

impl FlexWattsRuntime {
    /// Creates a runtime for one SoC.
    pub fn new(
        soc: SocSpec,
        params: ModelParams,
        predictor: ModePredictor,
        config: RuntimeConfig,
    ) -> Self {
        let ivr_mode = FlexWattsPdn::new(params.clone(), PdnMode::IvrMode);
        let protection = MaxCurrentProtection::from_rail_sizing(&ivr_mode, &soc)
            .expect("rail sizing of the client SoC is always feasible");
        Self {
            ldo_mode: FlexWattsPdn::new(params, PdnMode::LdoMode),
            sensors: ActivitySensorBank::new(config.sensor_seed),
            switch_flow: ModeSwitchFlow::new(),
            ivr_mode,
            protection,
            predictor,
            soc,
            config,
        }
    }

    pub(crate) fn pdn(&self, mode: PdnMode) -> &FlexWattsPdn {
        match mode {
            PdnMode::IvrMode => &self.ivr_mode,
            PdnMode::LdoMode => &self.ldo_mode,
        }
    }

    /// The `V_IN` level of a mode (used for switch slew accounting).
    pub(crate) fn vin_level(&self, mode: PdnMode, scenario: &Scenario) -> Volts {
        match mode {
            PdnMode::IvrMode => self.ivr_mode.params().vin_level,
            PdnMode::LdoMode => {
                scenario.max_voltage_among(&DomainKind::WIDE_RANGE).unwrap_or(Volts::new(0.85))
            }
        }
    }

    /// Builds the pure per-interval state: the scenario and both modes'
    /// evaluations (the expensive part of an interval, reused across
    /// its evaluation chunks).
    pub(crate) fn prepare_interval(&self, phase: Phase) -> Result<PreparedInterval, PdnError> {
        let (scenario, estimated_type) = match phase {
            Phase::Active { workload_type, ar } => {
                let scenario = Scenario::active_fixed_tdp_frequency(&self.soc, workload_type, ar)?;
                let powered = DomainTable::from_fn(|k| scenario.load(k).powered);
                let estimated_type = classify_workload(&powered, None);
                (scenario, estimated_type)
            }
            Phase::Idle(state) => (Scenario::idle(&self.soc, state), WorkloadType::BatteryLife),
        };
        let power_ivr = self.ivr_mode.evaluate(&scenario)?.input_power;
        let ldo_eval = self.ldo_mode.evaluate(&scenario)?;
        let vin_ldo = ldo_eval
            .rails
            .iter()
            .find(|r| r.name == "V_IN")
            .map(|r| r.current)
            .unwrap_or(Amps::ZERO);
        Ok(PreparedInterval {
            scenario,
            power_ivr,
            power_ldo: ldo_eval.input_power,
            vin_ldo,
            estimated_type,
        })
    }

    /// Simulates a trace, returning the energy/switch report.
    ///
    /// Equivalent to [`run_with`](Self::run_with) on the full worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors.
    pub fn run(&self, trace: &Trace) -> Result<RuntimeReport, PdnError> {
        self.run_with(trace, Workers::Auto)
    }

    /// Simulates a trace, batching the pure per-interval work on the
    /// batch engine's worker pool.
    ///
    /// Scenario construction and the two per-interval mode evaluations
    /// are pure, so they fan out in parallel; the stateful pass —
    /// activity-sensor estimates (an ordered jitter stream), predictor
    /// hysteresis, and mode-switch accounting — then replays serially
    /// in trace order, which keeps the report bit-identical for any
    /// [`Workers`] choice.
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors.
    pub fn run_with(&self, trace: &Trace, workers: Workers) -> Result<RuntimeReport, PdnError> {
        let prepared = par_map(trace.intervals(), workers, |_, interval| {
            self.prepare_interval(interval.phase)
        });
        let prepared: Vec<PreparedInterval> = prepared.into_iter().collect::<Result<_, _>>()?;

        let mut state = ReplayState::new(self);
        for (interval, prep) in trace.intervals().iter().zip(&prepared) {
            state.step(self, &self.sensors, interval, prep)?;
        }
        Ok(state.finish())
    }

    /// A fresh activity-sensor bank calibrated with this runtime's seed:
    /// fault campaigns draw from their own sensor stream so repeated
    /// campaigns on one runtime stay bit-identical.
    pub(crate) fn fresh_sensor_bank(&self) -> ActivitySensorBank {
        ActivitySensorBank::new(self.config.sensor_seed)
    }
}

/// The serial, stateful half of a trace replay: sensor draws, predictor
/// hysteresis, protection overrides, mode switches, and energy/time
/// accounting. One implementation serves both [`FlexWattsRuntime::run_with`]
/// and the streaming checkpointed replay ([`crate::replay`]) — sharing
/// the loop is what makes a resumed streaming replay bitwise equal to an
/// in-memory run.
///
/// Every field is a plain accumulator (or restorable counter), so a
/// checkpoint that snapshots them between intervals captures the entire
/// replay state: stepping interval `k+1` after a restore performs
/// exactly the floating-point additions the uninterrupted run would.
#[derive(Debug)]
pub(crate) struct ReplayState {
    pub(crate) mode: PdnMode,
    pub(crate) energy: f64,
    pub(crate) oracle_energy: f64,
    pub(crate) switches: Vec<SwitchTransition>,
    pub(crate) time_in_mode: BTreeMap<PdnMode, Seconds>,
    pub(crate) driver: CStateDriver,
    pub(crate) evaluations: u64,
    pub(crate) correct_predictions: u64,
    pub(crate) protection_overrides: u64,
    pub(crate) total_time: Seconds,
    pub(crate) eval_interval: Seconds,
    pub(crate) since_eval: Seconds,
}

impl ReplayState {
    /// Boot state for a runtime: initial mode, zeroed ledgers, and an
    /// evaluation due at the first interval.
    pub(crate) fn new(rt: &FlexWattsRuntime) -> Self {
        let eval_interval = rt.predictor.evaluation_interval();
        Self {
            mode: rt.config.initial_mode,
            energy: 0.0,
            oracle_energy: 0.0,
            switches: Vec::new(),
            time_in_mode: PdnMode::ALL.iter().map(|&m| (m, Seconds::ZERO)).collect(),
            driver: CStateDriver::new(),
            evaluations: 0,
            correct_predictions: 0,
            protection_overrides: 0,
            total_time: Seconds::ZERO,
            eval_interval,
            since_eval: eval_interval, // evaluate at trace start
        }
    }

    /// Replays one interval: draws the PMU inputs (the sensor estimate
    /// is an ordered stream, so it happens here, not in the prepare
    /// fan-out), walks the evaluation-cadence chunks, and accumulates
    /// energy and time.
    pub(crate) fn step(
        &mut self,
        rt: &FlexWattsRuntime,
        sensors: &ActivitySensorBank,
        interval: &pdn_workload::TraceInterval,
        prep: &PreparedInterval,
    ) -> Result<(), PdnError> {
        let PreparedInterval { scenario, power_ivr, power_ldo, estimated_type, .. } = prep;
        let (power_ivr, power_ldo) = (*power_ivr, *power_ldo);
        let pmu_inputs = match interval.phase {
            Phase::Active { ar, .. } => PredictorInputs {
                tdp: rt.soc.tdp,
                ar: sensors.estimate(DomainKind::Core0, ar),
                workload_type: *estimated_type,
                power_state: None,
            },
            Phase::Idle(state) => PredictorInputs {
                tdp: rt.soc.tdp,
                ar: interval.phase.ar(),
                workload_type: WorkloadType::BatteryLife,
                power_state: Some(state),
            },
        };

        let oracle_power = power_ivr.min(power_ldo);
        let oracle_mode = if power_ivr <= power_ldo { PdnMode::IvrMode } else { PdnMode::LdoMode };

        let mut remaining = interval.duration;
        while remaining.get() > 0.0 {
            if self.since_eval >= self.eval_interval {
                self.since_eval = Seconds::ZERO;
                self.evaluations += 1;
                let mut decided = rt.predictor.predict_with_hysteresis(pmu_inputs, self.mode);
                if rt.config.max_current_protection {
                    let (enforced, fired) =
                        rt.protection.enforce(decided, &rt.ldo_mode, scenario)?;
                    if fired {
                        self.protection_overrides += 1;
                    }
                    decided = enforced;
                }
                if decided == oracle_mode {
                    self.correct_predictions += 1;
                }
                if decided != self.mode {
                    // The mode switch forces ≈ 94 µs of C6 idleness.
                    let v_from = rt.vin_level(self.mode, scenario);
                    let v_to = rt.vin_level(decided, scenario);
                    let transition =
                        rt.switch_flow.execute(self.mode, decided, v_from, v_to, &mut self.driver);
                    let switch_time = transition.total();
                    // During the switch the package sits in C6.
                    let c6 = Scenario::idle(&rt.soc, PackageCState::C6);
                    let c6_power = rt.pdn(decided).evaluate(&c6)?.input_power;
                    self.energy += c6_power * switch_time;
                    self.oracle_energy += c6_power * switch_time;
                    self.total_time += switch_time;
                    self.switches.push(transition);
                    self.mode = decided;
                }
            }
            let chunk = remaining.min(self.eval_interval - self.since_eval);
            let power = match self.mode {
                PdnMode::IvrMode => power_ivr,
                PdnMode::LdoMode => power_ldo,
            };
            self.energy += power * chunk;
            self.oracle_energy += oracle_power * chunk;
            *self.time_in_mode.get_mut(&self.mode).expect("all modes present") += chunk;
            self.total_time += chunk;
            self.since_eval += chunk;
            remaining -= chunk;
        }
        Ok(())
    }

    /// Seals the accumulators into a [`RuntimeReport`].
    pub(crate) fn finish(self) -> RuntimeReport {
        RuntimeReport {
            total_time: self.total_time,
            energy_joules: self.energy,
            oracle_energy_joules: self.oracle_energy,
            switches: self.switches,
            time_in_mode: self.time_in_mode,
            predictor_evaluations: self.evaluations,
            prediction_accuracy: if self.evaluations == 0 {
                1.0
            } else {
                self.correct_predictions as f64 / self.evaluations as f64
            },
            protection_overrides: self.protection_overrides,
            switch_failures: 0,
            switch_retries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_proc::client_soc;
    use pdn_units::ApplicationRatio;
    use pdn_workload::{BatteryLifeWorkload, TraceInterval, WorkloadType};

    fn predictor() -> ModePredictor {
        ModePredictor::train(
            &ModelParams::paper_defaults(),
            &[4.0, 10.0, 18.0, 25.0, 50.0],
            &[0.4, 0.6, 0.8],
        )
        .unwrap()
    }

    fn runtime(tdp: f64) -> FlexWattsRuntime {
        FlexWattsRuntime::new(
            client_soc(Watts::new(tdp)),
            ModelParams::paper_defaults(),
            predictor(),
            RuntimeConfig::default(),
        )
    }

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn predictor_cadence_chunks_intervals_exactly() {
        let pred = predictor().with_evaluation_interval(Seconds::from_millis(10.0));
        let rt = FlexWattsRuntime::new(
            client_soc(Watts::new(4.0)),
            ModelParams::paper_defaults(),
            pred,
            RuntimeConfig::default(),
        );
        // A single 25 ms interval splits into 10 + 10 + 5 ms chunks with
        // an evaluation at the head of each.
        let trace = Trace::new(
            "cadence",
            vec![TraceInterval::active(
                Seconds::from_millis(25.0),
                WorkloadType::SingleThread,
                ar(0.6),
            )],
        );
        let report = rt.run(&trace).unwrap();
        assert_eq!(report.predictor_evaluations, 3);
        let mut expected = Seconds::from_millis(25.0);
        for t in &report.switches {
            expected += t.total();
        }
        assert_eq!(report.total_time, expected, "chunks cover the trace exactly");

        // Short intervals accumulate toward the cadence: 5 + 5 ms spans
        // one interval boundary without re-evaluating, and the next
        // interval starts exactly on the cadence.
        let trace = Trace::new(
            "accumulate",
            vec![
                TraceInterval::active(
                    Seconds::from_millis(5.0),
                    WorkloadType::SingleThread,
                    ar(0.6),
                ),
                TraceInterval::active(
                    Seconds::from_millis(5.0),
                    WorkloadType::SingleThread,
                    ar(0.6),
                ),
                TraceInterval::active(
                    Seconds::from_millis(1.0),
                    WorkloadType::SingleThread,
                    ar(0.6),
                ),
            ],
        );
        let report = rt.run(&trace).unwrap();
        assert_eq!(report.predictor_evaluations, 2, "trace start + the 10 ms mark");
    }

    #[test]
    fn low_tdp_workload_settles_into_ldo_mode() {
        let rt = runtime(4.0);
        let trace = Trace::new(
            "steady",
            vec![TraceInterval::active(
                Seconds::from_millis(100.0),
                WorkloadType::SingleThread,
                ar(0.6),
            )],
        );
        let report = rt.run(&trace).unwrap();
        // Booting in IVR-Mode, the first evaluation must switch to LDO.
        assert_eq!(report.switches.len(), 1);
        assert_eq!(report.switches[0].to, PdnMode::LdoMode);
        let ldo_time = report.time_in_mode[&PdnMode::LdoMode];
        assert!(ldo_time.get() > 0.95 * report.total_time.get());
        assert!(report.prediction_accuracy > 0.9);
    }

    #[test]
    fn high_tdp_workload_stays_in_ivr_mode() {
        let rt = runtime(50.0);
        let trace = Trace::new(
            "steady",
            vec![TraceInterval::active(
                Seconds::from_millis(100.0),
                WorkloadType::MultiThread,
                ar(0.7),
            )],
        );
        let report = rt.run(&trace).unwrap();
        assert!(report.switches.is_empty(), "no reason to leave IVR-Mode at 50 W");
        assert_eq!(report.time_in_mode[&PdnMode::IvrMode], report.total_time);
    }

    #[test]
    fn bursty_trace_switches_modes_and_pays_the_latency() {
        // At 36 W: heavy bursts prefer IVR-Mode; the low-frequency active
        // state (C0MIN, e.g. between video frames) prefers LDO-Mode.
        let rt = runtime(36.0);
        let mut intervals = Vec::new();
        for _ in 0..5 {
            intervals.push(TraceInterval::active(
                Seconds::from_millis(40.0),
                WorkloadType::MultiThread,
                ar(0.8),
            ));
            intervals.push(TraceInterval::idle(
                Seconds::from_millis(40.0),
                pdn_proc::PackageCState::C0Min,
            ));
        }
        let report = rt.run(&Trace::new("bursty", intervals)).unwrap();
        assert!(report.switches.len() >= 6, "bursts must toggle the mode");
        let overhead = report.switch_overhead();
        assert!(
            (overhead.micros() - 94.0 * report.switches.len() as f64).abs()
                < 40.0 * report.switches.len() as f64,
            "each switch costs ≈ 94 µs"
        );
        // Switch overhead is a tiny fraction of a 400 ms trace.
        assert!(overhead.get() / report.total_time.get() < 0.01);
    }

    #[test]
    fn deep_idle_is_mode_neutral_so_no_thrashing() {
        // In C2–C8 the compute rails are off and SA/IO sit on dedicated
        // board rails in *both* modes, so the predictor sees (nearly)
        // equal ETEE and the hysteresis keeps the current mode — no
        // pointless switch storm while a video idles in C8.
        let rt = runtime(36.0);
        let trace = Trace::new(
            "deep-idle",
            vec![TraceInterval::idle(Seconds::from_millis(200.0), pdn_proc::PackageCState::C8)],
        );
        let report = rt.run(&trace).unwrap();
        assert!(report.switches.len() <= 1, "C8 must not toggle modes");
    }

    #[test]
    fn video_playback_runs_close_to_the_oracle() {
        let rt = runtime(18.0);
        let trace = BatteryLifeWorkload::VideoPlayback.as_trace(30);
        let report = rt.run(&trace).unwrap();
        assert!(
            report.energy_efficiency_vs_oracle() > 0.97,
            "runtime must track the oracle: {:.4}",
            report.energy_efficiency_vs_oracle()
        );
        assert!(report.average_power().get() > 0.1 && report.average_power().get() < 2.0);
    }

    #[test]
    fn protection_override_forces_ivr_mode_out_of_a_greedy_ldo_runtime() {
        // Boot a 50 W platform in LDO-Mode with a predictor whose
        // hysteresis is so large it would never leave it voluntarily,
        // then run a multi-thread power virus. The virus current on the
        // shared V_IN rail exceeds the trip point in LDO-Mode, so the
        // maximum-current protection — not the efficiency preference —
        // must override the decision and land the platform in IVR-Mode.
        let rt = FlexWattsRuntime::new(
            client_soc(Watts::new(50.0)),
            ModelParams::paper_defaults(),
            predictor().with_hysteresis(10.0),
            RuntimeConfig { initial_mode: PdnMode::LdoMode, ..RuntimeConfig::default() },
        );
        let trace = Trace::new(
            "virus",
            vec![TraceInterval::active(
                Seconds::from_millis(50.0),
                WorkloadType::MultiThread,
                ar(1.0),
            )],
        );
        let report = rt.run(&trace).unwrap();
        assert!(report.protection_overrides >= 1, "the override must fire");
        assert_eq!(report.switches.first().map(|s| s.to), Some(PdnMode::IvrMode));
        let ivr_time = report.time_in_mode[&PdnMode::IvrMode];
        assert!(
            ivr_time.get() > 0.99 * (report.total_time - report.switch_overhead()).get(),
            "after the override the trace must execute in IVR-Mode"
        );
        // Sanity: without the protection the same runtime stays in
        // LDO-Mode (the hysteresis pins it) — the switch above really is
        // the protection's doing.
        let unprotected = FlexWattsRuntime::new(
            client_soc(Watts::new(50.0)),
            ModelParams::paper_defaults(),
            predictor().with_hysteresis(10.0),
            RuntimeConfig {
                initial_mode: PdnMode::LdoMode,
                max_current_protection: false,
                ..RuntimeConfig::default()
            },
        );
        let report = unprotected.run(&trace).unwrap();
        assert!(report.switches.is_empty());
        assert_eq!(report.protection_overrides, 0);
    }

    #[test]
    fn parallel_run_matches_serial_bitwise() {
        // Fresh runtimes so both runs see the same sensor-jitter stream.
        let trace = BatteryLifeWorkload::VideoPlayback.as_trace(10);
        let serial = runtime(18.0).run_with(&trace, Workers::Serial).unwrap();
        let parallel = runtime(18.0).run_with(&trace, Workers::Fixed(4)).unwrap();
        assert_eq!(serial.energy_joules.to_bits(), parallel.energy_joules.to_bits());
        assert_eq!(serial.oracle_energy_joules.to_bits(), parallel.oracle_energy_joules.to_bits());
        assert_eq!(serial.switches.len(), parallel.switches.len());
        assert_eq!(serial.predictor_evaluations, parallel.predictor_evaluations);
        assert_eq!(serial.prediction_accuracy, parallel.prediction_accuracy);
    }

    #[test]
    fn report_accounting_is_consistent() {
        let rt = runtime(10.0);
        let trace = Trace::new(
            "mixed",
            vec![
                TraceInterval::active(Seconds::from_millis(25.0), WorkloadType::Graphics, ar(0.7)),
                TraceInterval::idle(Seconds::from_millis(25.0), pdn_proc::PackageCState::C6),
            ],
        );
        let report = rt.run(&trace).unwrap();
        let mode_time: Seconds = report.time_in_mode.values().copied().sum();
        assert!(
            (mode_time + report.switch_overhead() - report.total_time).abs().get() < 1e-9,
            "time must be fully attributed"
        );
        assert!(report.oracle_energy_joules <= report.energy_joules + 1e-12);
        assert!(report.predictor_evaluations >= 5);
    }
}
