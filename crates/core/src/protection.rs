//! System maximum-current protection for the hybrid PDN.
//!
//! FlexWatts's shared `V_IN` VR is electrically sized for IVR-Mode
//! currents (§7: IVR-Mode carries roughly half the current of LDO-Mode at
//! the same power, so the shared VR is designed "with a maximum-current
//! level similar to that of IVR"). That sizing is only safe because the
//! PMU's maximum-current protection (§6 cites the Skylake mechanism)
//! *forces* IVR-Mode whenever running in LDO-Mode would push the `V_IN`
//! current past its design limit — efficiency preferences never override
//! electrical safety.
//!
//! [`MaxCurrentProtection`] implements that override. The runtime consults
//! it after every predictor decision.

use crate::topology::{FlexWattsPdn, PdnMode};
use pdn_units::Amps;
use pdnspot::{Pdn, PdnError, Scenario};
use serde::{Deserialize, Serialize};

/// The PMU's maximum-current protection for the shared `V_IN` rail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxCurrentProtection {
    /// The `V_IN` rail's electrical design current.
    pub vin_iccmax: Amps,
    /// Protection threshold as a fraction of Iccmax: the PMU acts before
    /// the limit is reached (sensing latency, load transients).
    pub threshold: f64,
}

impl MaxCurrentProtection {
    /// Creates a protection with explicit limits, validating them: a
    /// non-finite or non-positive `vin_iccmax`, or a threshold outside
    /// `(0, 1]`, would yield a protection that can never trip (or trips
    /// above the rail's electrical limit), silently disabling the safety
    /// net the `V_IN` sizing depends on.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Degraded`] describing the rejected value.
    pub fn new(vin_iccmax: Amps, threshold: f64) -> Result<Self, PdnError> {
        if !vin_iccmax.is_finite() || vin_iccmax.get() <= 0.0 {
            return Err(PdnError::Degraded {
                component: "MaxCurrentProtection".into(),
                reason: format!(
                    "vin_iccmax must be finite and positive, got {} A",
                    vin_iccmax.get()
                ),
            });
        }
        if !threshold.is_finite() || threshold <= 0.0 || threshold > 1.0 {
            return Err(PdnError::Degraded {
                component: "MaxCurrentProtection".into(),
                reason: format!("threshold must be finite and in (0, 1], got {threshold}"),
            });
        }
        Ok(Self { vin_iccmax, threshold })
    }

    /// Builds the protection from the FlexWatts rail sizing of a SoC: the
    /// `V_IN` rail's LDO-Mode output-current capability (the IVR-Mode
    /// rating times the duty-cycle headroom at the low output voltage,
    /// capped at the mode-crossover power — see
    /// [`FlexWattsPdn::vin_protection_limit`]), with a 5 % electrical
    /// margin on top so steady crossover-level operation does not trip it.
    ///
    /// # Errors
    ///
    /// Propagates rail-sizing errors and rejects degenerate sizings
    /// (non-finite or non-positive limits) that would produce a
    /// protection that can never trip.
    pub fn from_rail_sizing(pdn: &FlexWattsPdn, soc: &pdn_proc::SocSpec) -> Result<Self, PdnError> {
        let vin = pdn.vin_protection_limit(soc)? * 1.05;
        Self::new(vin, 0.95)
    }

    /// The current the protection allows before intervening.
    pub fn trip_current(&self) -> Amps {
        self.vin_iccmax * self.threshold
    }

    /// Whether a `V_IN` current would trip the protection.
    pub fn would_trip(&self, vin_current: Amps) -> bool {
        vin_current > self.trip_current()
    }

    /// Applies the protection to a mode decision: if running `scenario` in
    /// the decided mode would exceed the trip current on `V_IN`, the
    /// decision is overridden to IVR-Mode (whose higher rail voltage
    /// halves the current).
    ///
    /// Returns the (possibly overridden) mode and whether an override
    /// fired.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn enforce(
        &self,
        decided: PdnMode,
        ldo_mode: &FlexWattsPdn,
        scenario: &Scenario,
    ) -> Result<(PdnMode, bool), PdnError> {
        if decided == PdnMode::IvrMode {
            return Ok((decided, false));
        }
        let eval = ldo_mode.evaluate(scenario)?;
        let vin_current =
            eval.rails.iter().find(|r| r.name == "V_IN").map(|r| r.current).unwrap_or(Amps::ZERO);
        if self.would_trip(vin_current) {
            Ok((PdnMode::IvrMode, true))
        } else {
            Ok((decided, false))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_proc::client_soc;
    use pdn_units::{ApplicationRatio, Watts};
    use pdn_workload::WorkloadType;
    use pdnspot::ModelParams;

    fn protection(tdp: f64) -> (MaxCurrentProtection, FlexWattsPdn, pdn_proc::SocSpec) {
        let params = ModelParams::paper_defaults();
        let soc = client_soc(Watts::new(tdp));
        let ldo = FlexWattsPdn::new(params.clone(), PdnMode::LdoMode);
        let ivr = FlexWattsPdn::new(params, PdnMode::IvrMode);
        let prot = MaxCurrentProtection::from_rail_sizing(&ivr, &soc).unwrap();
        (prot, ldo, soc)
    }

    #[test]
    fn ivr_mode_decisions_pass_through() {
        let (prot, ldo, soc) = protection(18.0);
        let s = Scenario::active_fixed_tdp_frequency(
            &soc,
            WorkloadType::MultiThread,
            ApplicationRatio::new(0.6).unwrap(),
        )
        .unwrap();
        let (mode, fired) = prot.enforce(PdnMode::IvrMode, &ldo, &s).unwrap();
        assert_eq!(mode, PdnMode::IvrMode);
        assert!(!fired);
    }

    #[test]
    fn light_ldo_mode_loads_are_allowed() {
        let (prot, ldo, soc) = protection(18.0);
        let s = Scenario::idle(&soc, pdn_proc::PackageCState::C0Min);
        let (mode, fired) = prot.enforce(PdnMode::LdoMode, &ldo, &s).unwrap();
        assert_eq!(mode, PdnMode::LdoMode);
        assert!(!fired, "C0MIN currents are far below the trip point");
    }

    #[test]
    fn heavy_ldo_mode_loads_force_ivr_mode() {
        // The rail is sized at the IVR-Mode virus current; the LDO-Mode
        // virus at low rail voltage roughly doubles the current, so the
        // protection must fire.
        let (prot, ldo, soc) = protection(50.0);
        let virus = Scenario::power_virus_at_tdp(&soc, WorkloadType::MultiThread).unwrap();
        let (mode, fired) = prot.enforce(PdnMode::LdoMode, &ldo, &virus).unwrap();
        assert_eq!(mode, PdnMode::IvrMode);
        assert!(fired, "the power virus in LDO-Mode must trip the protection");
    }

    #[test]
    fn trip_current_sits_below_iccmax() {
        let (prot, _, _) = protection(25.0);
        assert!(prot.trip_current() < prot.vin_iccmax);
        assert!(prot.trip_current().get() > 0.0);
    }

    #[test]
    fn degenerate_limits_are_rejected_with_a_descriptive_error() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -3.0] {
            let err = MaxCurrentProtection::new(Amps::new(bad), 0.95).unwrap_err();
            assert!(
                matches!(&err, PdnError::Degraded { component, .. }
                    if component == "MaxCurrentProtection"),
                "{err}"
            );
            assert!(err.to_string().contains("vin_iccmax"), "{err}");
        }
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.5, 1.5] {
            let err = MaxCurrentProtection::new(Amps::new(30.0), bad).unwrap_err();
            assert!(err.to_string().contains("threshold"), "{err}");
        }
        // A valid configuration still constructs and can trip.
        let ok = MaxCurrentProtection::new(Amps::new(30.0), 0.95).unwrap();
        assert!(ok.would_trip(Amps::new(29.0)));
        assert!(!ok.would_trip(Amps::new(28.0)));
    }

    #[test]
    fn ldo_mode_virus_current_is_roughly_double_ivr_mode() {
        // §7's quantitative claim: "FlexWatts has reduced current (by
        // nearly 50%) in IVR-Mode compared to LDO".
        let params = ModelParams::paper_defaults();
        let soc = client_soc(Watts::new(25.0));
        let virus = Scenario::power_virus_at_tdp(&soc, WorkloadType::MultiThread).unwrap();
        let vin_current = |mode: PdnMode| -> f64 {
            FlexWattsPdn::new(params.clone(), mode)
                .evaluate(&virus)
                .unwrap()
                .rails
                .iter()
                .find(|r| r.name == "V_IN")
                .unwrap()
                .current
                .get()
        };
        let ratio = vin_current(PdnMode::LdoMode) / vin_current(PdnMode::IvrMode);
        assert!(
            (1.5..=3.0).contains(&ratio),
            "LDO-Mode current should be ≈ 2× IVR-Mode: {ratio:.2}×"
        );
    }
}
