//! Property-based tests of the checkpoint-resume contract: a replay
//! killed at *any* interval, resumed from whatever checkpoint survived,
//! finishes with a [`RuntimeReport`] bitwise equal to the uninterrupted
//! run — for any worker count and checkpoint cadence — and checkpoint
//! decoding never panics on arbitrary bytes.

use flexwatts::{
    CheckpointPlan, FlexWattsRuntime, ModePredictor, ReplayCheckpoint, ReplayFileOptions,
    RuntimeConfig, RuntimeReport, TraceReplayer,
};
use pdn_proc::client_soc;
use pdn_units::Watts;
use pdn_workload::tracefile::{write_trace_chunked, DefectPolicy, TraceReader};
use pdn_workload::zoo;
use pdnspot::{ModelParams, Workers};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const TRACE_INTERVALS: u64 = 120;

fn runtime() -> &'static FlexWattsRuntime {
    static RT: OnceLock<FlexWattsRuntime> = OnceLock::new();
    RT.get_or_init(|| {
        let predictor = ModePredictor::train(
            &ModelParams::paper_defaults(),
            &[4.0, 10.0, 18.0, 25.0, 50.0],
            &[0.4, 0.6, 0.8],
        )
        .unwrap();
        FlexWattsRuntime::new(
            client_soc(Watts::new(18.0)),
            ModelParams::paper_defaults(),
            predictor,
            RuntimeConfig::default(),
        )
    })
}

/// The shared trace file plus the uninterrupted-run report every case
/// compares against (cold replay uses a dedicated sensor bank, so the
/// shared runtime stays untouched).
fn reference() -> &'static (PathBuf, RuntimeReport) {
    static REF: OnceLock<(PathBuf, RuntimeReport)> = OnceLock::new();
    REF.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("flexwatts-replay-prop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("mix.pdnt");
        write_trace_chunked(&path, &zoo::zoo_mix(11, 30), 32).unwrap();
        let cold = runtime().run_streaming(&path, &ReplayFileOptions::default()).unwrap();
        assert_eq!(cold.intervals_replayed, TRACE_INTERVALS);
        (path, cold.report)
    })
}

fn reports_bitwise_equal(a: &RuntimeReport, b: &RuntimeReport) -> bool {
    a.energy_joules.to_bits() == b.energy_joules.to_bits()
        && a.oracle_energy_joules.to_bits() == b.oracle_energy_joules.to_bits()
        && a.total_time.get().to_bits() == b.total_time.get().to_bits()
        && a.prediction_accuracy.to_bits() == b.prediction_accuracy.to_bits()
        && a.switches == b.switches
        && a.time_in_mode == b.time_in_mode
        && a.predictor_evaluations == b.predictor_evaluations
        && a.protection_overrides == b.protection_overrides
}

fn workers(pick: usize) -> Workers {
    match pick % 4 {
        0 => Workers::Serial,
        1 => Workers::Auto,
        n => Workers::Fixed(n),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill the replay after a random number of intervals (checkpointing
    /// at a random cadence, on a random worker count), resume on another
    /// random worker count, and the final report is bitwise equal to the
    /// uninterrupted run. When the kill lands before the first
    /// checkpoint, the resume degrades to a cold start — which must be
    /// bit-identical too.
    #[test]
    fn killed_replay_resumes_bit_identical(
        kill in 1u64..TRACE_INTERVALS,
        every in 5u64..40,
        crash_workers in 0usize..6,
        resume_workers in 0usize..6,
    ) {
        let (path, cold) = reference();
        let cp_path = path.with_file_name(format!("kill{kill}-every{every}.pdnc"));
        let _ = std::fs::remove_file(&cp_path);

        // The "crashing" half: replay `kill` intervals, checkpointing
        // every `every`, then drop everything mid-flight.
        {
            let mut reader = TraceReader::open(path, DefectPolicy::Quarantine).unwrap();
            let fp = reader.fingerprint();
            let mut replayer = TraceReplayer::new(runtime(), workers(crash_workers));
            let mut pending = Vec::new();
            for _ in 0..kill {
                pending.push(reader.next_interval().unwrap().unwrap());
                if pending.len() as u64 == every {
                    replayer.feed(&pending).unwrap();
                    pending.clear();
                    replayer.checkpoint(fp).save(&cp_path).unwrap();
                }
            }
            replayer.feed(&pending).unwrap();
            // ...crash: no finish, no final checkpoint.
        }

        let resumed = runtime()
            .run_streaming(
                path,
                &ReplayFileOptions {
                    workers: workers(resume_workers),
                    checkpoint: Some(CheckpointPlan {
                        path: cp_path.clone(),
                        every_intervals: every,
                        resume: true,
                    }),
                    ..Default::default()
                },
            )
            .unwrap();

        let expected_resume =
            if kill >= every { Some((kill / every) * every) } else { None };
        prop_assert_eq!(resumed.resumed_from, expected_resume);
        prop_assert_eq!(resumed.intervals_replayed, TRACE_INTERVALS);
        prop_assert!(
            reports_bitwise_equal(cold, &resumed.report),
            "kill at {} (checkpoint every {}) diverged from the uninterrupted run",
            kill,
            every
        );
        let _ = std::fs::remove_file(&cp_path);
    }

    /// Checkpoint decoding never panics, whatever the bytes.
    #[test]
    fn checkpoint_decode_never_panics(data in vec(any::<u8>(), 0..256)) {
        let _ = ReplayCheckpoint::decode(&data);
    }

    /// Single bit flips of a valid checkpoint are always rejected — the
    /// CRC gate leaves no silent path back into a resumed replay.
    #[test]
    fn checkpoint_bit_flips_are_rejected(offset in 0usize..1 << 16, bit in 0u8..8) {
        static ENCODED: OnceLock<Vec<u8>> = OnceLock::new();
        let encoded = ENCODED.get_or_init(|| {
            let (path, _) = reference();
            let mut reader = TraceReader::open(path, DefectPolicy::Quarantine).unwrap();
            let fp = reader.fingerprint();
            let mut replayer = TraceReplayer::new(runtime(), Workers::Serial);
            let mut batch = Vec::new();
            for _ in 0..40 {
                batch.push(reader.next_interval().unwrap().unwrap());
            }
            replayer.feed(&batch).unwrap();
            replayer.checkpoint(fp).encode()
        });
        let mut corrupt = encoded.clone();
        let at = offset % corrupt.len();
        corrupt[at] ^= 1 << bit;
        prop_assert!(
            ReplayCheckpoint::decode(&corrupt).is_err(),
            "bit {bit} of checkpoint byte {at} flipped silently"
        );
        prop_assert!(ReplayCheckpoint::decode(encoded).is_ok());
    }
}
