//! Property-based tests for the quantity, ratio, and curve primitives.

use pdn_units::{Amps, ApplicationRatio, Curve1, Efficiency, Grid2, Ohms, Volts, Watts};
use proptest::prelude::*;

fn finite(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    range.prop_filter("finite", |v| v.is_finite())
}

proptest! {
    /// Ohm's law closes: (V / I) * I == V up to floating-point error.
    #[test]
    fn ohms_law_closes(v in finite(1e-3..10.0), i in finite(1e-3..100.0)) {
        let volts = Volts::new(v);
        let amps = Amps::new(i);
        let r: Ohms = volts / amps;
        let back: Volts = amps * r;
        prop_assert!((back.get() - v).abs() <= 1e-9 * v.abs());
    }

    /// Conversion stages never create power: input ≥ output for η ∈ (0, 1].
    #[test]
    fn efficiency_never_creates_power(eta in finite(0.01..1.0), p in finite(0.0..100.0)) {
        let eta = Efficiency::new(eta).unwrap();
        let out = Watts::new(p);
        let input = eta.input_for_output(out);
        prop_assert!(input.get() >= out.get() - 1e-12);
        let loss = eta.loss_for_output(out);
        prop_assert!(loss.get() >= -1e-12);
        // Round trip.
        let recovered = eta.output_for_input(input);
        prop_assert!((recovered.get() - p).abs() <= 1e-9 * p.max(1.0));
    }

    /// Chaining efficiencies is commutative and never exceeds either stage.
    #[test]
    fn chain_is_commutative_and_contractive(a in finite(0.01..1.0), b in finite(0.01..1.0)) {
        let ea = Efficiency::new(a).unwrap();
        let eb = Efficiency::new(b).unwrap();
        prop_assert_eq!(ea.chain(eb), eb.chain(ea));
        let chained = ea.chain(eb).get();
        prop_assert!(chained <= ea.get() + 1e-15);
        prop_assert!(chained <= eb.get() + 1e-15);
    }

    /// Peak power is at least average power for any valid AR.
    #[test]
    fn peak_power_dominates_average(ar in finite(0.01..1.0), p in finite(0.0..100.0)) {
        let ar = ApplicationRatio::new(ar).unwrap();
        prop_assert!(ar.peak_power(Watts::new(p)).get() >= p - 1e-12);
    }

    /// Curve evaluation stays within the convex hull of the knot values.
    #[test]
    fn curve_eval_bounded_by_knots(
        ys in prop::collection::vec(finite(-100.0..100.0), 2..20),
        x in finite(-10.0..30.0),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let curve = Curve1::from_axes(xs, ys.clone()).unwrap();
        let v = curve.eval(x);
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        prop_assert_eq!(curve.y_min(), lo);
        prop_assert_eq!(curve.y_max(), hi);
    }

    /// A curve built over a monotone non-decreasing set of y values evaluates
    /// monotonically.
    #[test]
    fn monotone_curve_evaluates_monotonically(
        mut ys in prop::collection::vec(finite(0.0..10.0), 2..12),
        a in finite(0.0..12.0),
        b in finite(0.0..12.0),
    ) {
        ys.sort_by(f64::total_cmp);
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let curve = Curve1::from_axes(xs, ys).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(curve.eval(lo) <= curve.eval(hi) + 1e-9);
    }

    /// Bilinear evaluation stays within the hull of the four bracketing
    /// lattice values (and therefore within the global hull).
    #[test]
    fn grid_eval_bounded(
        values in prop::collection::vec(finite(-5.0..5.0), 9),
        r in finite(-1.0..4.0),
        c in finite(-1.0..4.0),
    ) {
        let g = Grid2::from_rows(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0], values.clone()).unwrap();
        let v = g.eval(r, c);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// Grid evaluation reproduces lattice values exactly at the knots.
    #[test]
    fn grid_exact_at_knots(values in prop::collection::vec(finite(-5.0..5.0), 6)) {
        let rows = vec![1.0, 2.0];
        let cols = vec![10.0, 20.0, 40.0];
        let g = Grid2::from_rows(rows.clone(), cols.clone(), values.clone()).unwrap();
        for (ri, &r) in rows.iter().enumerate() {
            for (ci, &c) in cols.iter().enumerate() {
                prop_assert!((g.eval(r, c) - values[ri * 3 + ci]).abs() < 1e-12);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The segment-hint cursor cache is pure acceleration: a curve warmed
    /// by an arbitrary query walk evaluates bit-identically to a freshly
    /// built curve (cold hint) at every step, for `eval` and `eval_logx`.
    #[test]
    fn hinted_curve_eval_is_bit_identical_to_cold_eval(
        gaps in proptest::collection::vec(0.05f64..3.0, 3..12),
        ys in proptest::collection::vec(-5.0f64..5.0, 12),
        walk in proptest::collection::vec(-1.0f64..40.0, 1..50),
    ) {
        let mut x = 0.5;
        let mut xs = vec![x];
        for g in &gaps {
            x += g;
            xs.push(x);
        }
        let ys: Vec<f64> = (0..xs.len()).map(|i| ys[i]).collect();
        let warm = Curve1::from_axes(xs.clone(), ys.clone()).unwrap();
        for &q in &walk {
            let cold = Curve1::from_axes(xs.clone(), ys.clone()).unwrap();
            prop_assert_eq!(warm.eval(q).to_bits(), cold.eval(q).to_bits());
            let ql = q.max(0.05);
            prop_assert_eq!(warm.eval_logx(ql).to_bits(), cold.eval_logx(ql).to_bits());
        }
    }

    /// Same property for the 2-D grid's row/column hints.
    #[test]
    fn hinted_grid_eval_is_bit_identical_to_cold_eval(
        row_qs in proptest::collection::vec(-1.0f64..6.0, 1..40),
        col_qs in proptest::collection::vec(-1.0f64..6.0, 40),
    ) {
        let rows = vec![0.0, 1.0, 2.5, 4.0, 5.0];
        let cols = vec![0.0, 2.0, 3.0, 4.5];
        let values: Vec<f64> =
            (0..rows.len() * cols.len()).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let warm = Grid2::from_rows(rows.clone(), cols.clone(), values.clone()).unwrap();
        for (i, &r) in row_qs.iter().enumerate() {
            let c = col_qs[i];
            let cold = Grid2::from_rows(rows.clone(), cols.clone(), values.clone()).unwrap();
            prop_assert_eq!(warm.eval(r, c).to_bits(), cold.eval(r, c).to_bits());
        }
    }
}
