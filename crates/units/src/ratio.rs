//! Validated dimensionless quantities: generic ratios, power-conversion
//! efficiencies, and workload application ratios.

use crate::error::UnitsError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Div, Mul};

/// A non-negative, finite dimensionless ratio.
///
/// Used for leakage fractions, power-state residencies, normalisation
/// factors, and anywhere a plain `f64` would invite unit confusion.
///
/// # Examples
///
/// ```
/// use pdn_units::Ratio;
///
/// let residency = Ratio::new(0.85)?;
/// assert_eq!(residency.get(), 0.85);
/// assert_eq!(format!("{residency}"), "85.0%");
/// # Ok::<(), pdn_units::UnitsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Ratio = Ratio(0.0);
    /// The unit ratio.
    pub const ONE: Ratio = Ratio(1.0);

    /// Creates a ratio.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::NotFinite`] for NaN/infinite input and
    /// [`UnitsError::OutOfRange`] for negative input.
    pub fn new(value: f64) -> Result<Self, UnitsError> {
        if !value.is_finite() {
            return Err(UnitsError::NotFinite { what: "ratio" });
        }
        if value < 0.0 {
            return Err(UnitsError::OutOfRange { what: "ratio", value, range: "[0, ∞)" });
        }
        Ok(Self(value))
    }

    /// Creates a ratio from a percentage (e.g. `Ratio::from_percent(45.0)`
    /// is 0.45).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Ratio::new`].
    pub fn from_percent(pct: f64) -> Result<Self, UnitsError> {
        Self::new(pct / 100.0)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the value expressed as a percentage.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns the complement `1 - self`, saturating at zero.
    #[inline]
    pub fn complement(self) -> Ratio {
        Ratio((1.0 - self.0).max(0.0))
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(1);
        write!(f, "{:.*}%", prec, self.percent())
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Self) -> Ratio {
        Ratio(self.0 * rhs.0)
    }
}

impl Mul<f64> for Ratio {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

/// A power-conversion efficiency, validated to lie in `(0, 1]`.
///
/// Every voltage-regulator model and the end-to-end ETEE computation produce
/// values of this type, making the `Pout / Pin ≤ 1` invariant structural.
///
/// # Examples
///
/// ```
/// use pdn_units::{Efficiency, Watts};
///
/// let eta = Efficiency::new(0.85)?;
/// let input = eta.input_for_output(Watts::new(1.7));
/// assert_eq!(input, Watts::new(2.0));
/// # Ok::<(), pdn_units::UnitsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Efficiency(f64);

impl Efficiency {
    /// A perfect (lossless) conversion.
    pub const PERFECT: Efficiency = Efficiency(1.0);

    /// Creates an efficiency.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::NotFinite`] for NaN/infinite input and
    /// [`UnitsError::OutOfRange`] unless `0 < value ≤ 1`.
    pub fn new(value: f64) -> Result<Self, UnitsError> {
        if !value.is_finite() {
            return Err(UnitsError::NotFinite { what: "efficiency" });
        }
        if value <= 0.0 || value > 1.0 {
            return Err(UnitsError::OutOfRange { what: "efficiency", value, range: "(0, 1]" });
        }
        Ok(Self(value))
    }

    /// Creates an efficiency from a percentage (e.g. 88.0 → 0.88).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Efficiency::new`].
    pub fn from_percent(pct: f64) -> Result<Self, UnitsError> {
        Self::new(pct / 100.0)
    }

    /// Returns the raw value in `(0, 1]`.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the value expressed as a percentage.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Input power required to deliver `output` through this conversion
    /// stage (`Pin = Pout / η`, Eq. 1 of the paper rearranged).
    #[inline]
    pub fn input_for_output(self, output: crate::Watts) -> crate::Watts {
        crate::Watts::new(output.get() / self.0)
    }

    /// Output power delivered from `input` through this conversion stage.
    #[inline]
    pub fn output_for_input(self, input: crate::Watts) -> crate::Watts {
        crate::Watts::new(input.get() * self.0)
    }

    /// Power lost in the stage when delivering `output`.
    #[inline]
    pub fn loss_for_output(self, output: crate::Watts) -> crate::Watts {
        self.input_for_output(output) - output
    }

    /// Composes two conversion stages in series.
    #[inline]
    pub fn chain(self, next: Efficiency) -> Efficiency {
        // The product of two values in (0, 1] stays in (0, 1].
        Efficiency(self.0 * next.0)
    }
}

impl fmt::Display for Efficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(1);
        write!(f, "{:.*}%", prec, self.percent())
    }
}

impl Mul for Efficiency {
    type Output = Efficiency;
    fn mul(self, rhs: Self) -> Efficiency {
        self.chain(rhs)
    }
}

impl Div<Efficiency> for crate::Watts {
    type Output = crate::Watts;
    /// `P / η` — the input power drawing `P` through a stage of efficiency η.
    fn div(self, rhs: Efficiency) -> crate::Watts {
        rhs.input_for_output(self)
    }
}

/// A workload application ratio (AR), validated to lie in `(0, 1]`.
///
/// AR quantifies the computational intensity of a workload as the switching
/// rate relative to the most intensive possible workload (the power virus,
/// AR = 1); see §2.4 of the paper. The load-line guardband is sized for the
/// power virus, so `Ppeak = P / AR`.
///
/// # Examples
///
/// ```
/// use pdn_units::{ApplicationRatio, Watts};
///
/// let ar = ApplicationRatio::new(0.5)?;
/// let peak = ar.peak_power(Watts::new(5.0));
/// assert_eq!(peak, Watts::new(10.0));
/// # Ok::<(), pdn_units::UnitsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ApplicationRatio(f64);

impl ApplicationRatio {
    /// The power-virus application ratio (the most computationally intensive
    /// workload possible; AR = 1).
    pub const POWER_VIRUS: ApplicationRatio = ApplicationRatio(1.0);

    /// Creates an application ratio.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::NotFinite`] for NaN/infinite input and
    /// [`UnitsError::OutOfRange`] unless `0 < value ≤ 1`.
    pub fn new(value: f64) -> Result<Self, UnitsError> {
        if !value.is_finite() {
            return Err(UnitsError::NotFinite { what: "application ratio" });
        }
        if value <= 0.0 || value > 1.0 {
            return Err(UnitsError::OutOfRange {
                what: "application ratio",
                value,
                range: "(0, 1]",
            });
        }
        Ok(Self(value))
    }

    /// Creates an application ratio from a percentage (e.g. 56.0 → 0.56).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ApplicationRatio::new`].
    pub fn from_percent(pct: f64) -> Result<Self, UnitsError> {
        Self::new(pct / 100.0)
    }

    /// Returns the raw value in `(0, 1]`.
    #[inline]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the value expressed as a percentage.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Peak (power-virus) power corresponding to an average power `p` at
    /// this application ratio: `Ppeak = P / AR` (§3.1 of the paper).
    #[inline]
    pub fn peak_power(self, p: crate::Watts) -> crate::Watts {
        crate::Watts::new(p.get() / self.0)
    }
}

impl fmt::Display for ApplicationRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prec = f.precision().unwrap_or(0);
        write!(f, "{:.*}%", prec, self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Watts;

    #[test]
    fn efficiency_rejects_out_of_range() {
        assert!(Efficiency::new(0.0).is_err());
        assert!(Efficiency::new(-0.1).is_err());
        assert!(Efficiency::new(1.0001).is_err());
        assert!(Efficiency::new(f64::NAN).is_err());
        assert!(Efficiency::new(f64::INFINITY).is_err());
        assert!(Efficiency::new(1.0).is_ok());
        assert!(Efficiency::new(1e-9).is_ok());
    }

    #[test]
    fn efficiency_power_accounting_is_consistent() {
        let eta = Efficiency::new(0.8).unwrap();
        let out = Watts::new(4.0);
        let input = eta.input_for_output(out);
        assert_eq!(input, Watts::new(5.0));
        assert_eq!(eta.output_for_input(input), out);
        assert_eq!(eta.loss_for_output(out), Watts::new(1.0));
        // `/` operator sugar matches the method.
        assert_eq!(out / eta, input);
    }

    #[test]
    fn chained_stages_multiply() {
        let first = Efficiency::new(0.9).unwrap();
        let second = Efficiency::new(0.8).unwrap();
        let etee = first.chain(second);
        assert!((etee.get() - 0.72).abs() < 1e-12);
        assert_eq!(first * second, etee);
    }

    #[test]
    fn ar_peak_power_scales_inverse() {
        let ar = ApplicationRatio::from_percent(40.0).unwrap();
        assert_eq!(ar.peak_power(Watts::new(2.0)), Watts::new(5.0));
        assert_eq!(ApplicationRatio::POWER_VIRUS.peak_power(Watts::new(2.0)), Watts::new(2.0));
    }

    #[test]
    fn ar_rejects_zero_and_above_one() {
        assert!(ApplicationRatio::new(0.0).is_err());
        assert!(ApplicationRatio::new(1.01).is_err());
        assert!(ApplicationRatio::new(f64::NAN).is_err());
    }

    #[test]
    fn ratio_complement_saturates() {
        let r = Ratio::new(1.4).unwrap();
        assert_eq!(r.complement(), Ratio::ZERO);
        assert_eq!(Ratio::new(0.25).unwrap().complement().get(), 0.75);
    }

    #[test]
    fn ratio_rejects_negative() {
        assert!(Ratio::new(-0.01).is_err());
        assert!(Ratio::new(f64::INFINITY).is_err());
    }

    #[test]
    fn display_formats_as_percent() {
        assert_eq!(format!("{}", Efficiency::new(0.881).unwrap()), "88.1%");
        assert_eq!(format!("{:.0}", Ratio::new(0.25).unwrap()), "25%");
        assert_eq!(format!("{}", ApplicationRatio::new(0.56).unwrap()), "56%");
    }
}
