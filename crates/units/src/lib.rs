//! Typed physical quantities and numerical curve tools for the
//! FlexWatts/PDNspot power-delivery models.
//!
//! Power-delivery modelling mixes many scalar quantities — volts, amps,
//! watts, ohms, hertz, degrees Celsius — whose accidental confusion produces
//! silently wrong results. This crate provides zero-cost newtypes with the
//! physically meaningful arithmetic between them (`Volts * Amps = Watts`,
//! `Watts / Volts = Amps`, …), validated ratio types ([`Efficiency`],
//! [`Ratio`]), and the interpolation toolbox ([`Curve1`], [`Grid2`]) used to
//! represent measured voltage-regulator efficiency surfaces and the ETEE
//! tables stored in PMU firmware.
//!
//! # Examples
//!
//! ```
//! use pdn_units::{Amps, Ohms, Volts, Watts};
//!
//! let rail = Volts::new(1.8);
//! let load = Amps::new(2.0);
//! let power: Watts = rail * load;
//! assert_eq!(power, Watts::new(3.6));
//!
//! // I²R conduction loss on a 1 mΩ load line.
//! let loss: Watts = load.squared_times(Ohms::from_milliohms(1.0));
//! assert!((loss.get() - 0.004).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod curve;
pub mod error;
pub mod interp;
pub mod quantity;
pub mod ratio;

pub use curve::{Curve1, Curve1Builder, Grid2, Grid2Builder};
pub use error::UnitsError;
pub use interp::bilinear;
pub use quantity::{Amps, Celsius, Hertz, Ohms, Seconds, SquareMillimeters, Usd, Volts, Watts};
pub use ratio::{ApplicationRatio, Efficiency, Ratio};
