//! Error types for quantity validation and curve construction.

use std::fmt;

/// Error produced when constructing or evaluating a validated quantity,
/// ratio, or curve.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitsError {
    /// A value was outside its permitted range.
    OutOfRange {
        /// Name of the quantity being validated (e.g. `"efficiency"`).
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable description of the permitted range.
        range: &'static str,
    },
    /// A value was NaN or infinite where a finite value is required.
    NotFinite {
        /// Name of the quantity being validated.
        what: &'static str,
    },
    /// A curve was built from fewer points than required.
    TooFewPoints {
        /// Number of points supplied.
        got: usize,
        /// Minimum number of points required.
        need: usize,
    },
    /// Curve abscissae were not strictly increasing.
    NonMonotonicAxis {
        /// Index of the first offending point.
        index: usize,
    },
    /// A 2-D grid was built with a value count that does not match its axes.
    GridShapeMismatch {
        /// Expected number of values (`rows * cols`).
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
}

impl fmt::Display for UnitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitsError::OutOfRange { what, value, range } => {
                write!(f, "{what} value {value} outside permitted range {range}")
            }
            UnitsError::NotFinite { what } => {
                write!(f, "{what} value must be finite")
            }
            UnitsError::TooFewPoints { got, need } => {
                write!(f, "curve needs at least {need} points, got {got}")
            }
            UnitsError::NonMonotonicAxis { index } => {
                write!(f, "curve axis must be strictly increasing (violated at index {index})")
            }
            UnitsError::GridShapeMismatch { expected, got } => {
                write!(f, "grid expected {expected} values, got {got}")
            }
        }
    }
}

impl std::error::Error for UnitsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_meaningful() {
        let e = UnitsError::OutOfRange { what: "efficiency", value: 1.5, range: "(0, 1]" };
        let msg = e.to_string();
        assert!(msg.contains("efficiency"));
        assert!(msg.contains("1.5"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UnitsError>();
    }

    #[test]
    fn all_variants_display_nonempty() {
        let variants = [
            UnitsError::OutOfRange { what: "x", value: 0.0, range: "[0,1]" },
            UnitsError::NotFinite { what: "x" },
            UnitsError::TooFewPoints { got: 1, need: 2 },
            UnitsError::NonMonotonicAxis { index: 3 },
            UnitsError::GridShapeMismatch { expected: 6, got: 5 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
