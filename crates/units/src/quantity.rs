//! Zero-cost newtypes for the physical quantities used by PDN models.
//!
//! Each quantity wraps an `f64` in base SI units and implements only the
//! arithmetic that is physically meaningful. Cross-type products and
//! quotients (Ohm's law, power law) are provided where they eliminate a
//! class of unit-confusion bugs in the ETEE power-flow computations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $ctor_doc:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            #[doc = $ctor_doc]
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base SI units.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` when the value is finite (neither NaN nor
            /// infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electrical potential in volts.
    Volts, "V", "Creates a potential from a value in volts."
);
quantity!(
    /// Electrical current in amperes.
    Amps, "A", "Creates a current from a value in amperes."
);
quantity!(
    /// Power in watts.
    Watts, "W", "Creates a power from a value in watts."
);
quantity!(
    /// Electrical resistance in ohms.
    Ohms, "Ω", "Creates a resistance from a value in ohms."
);
quantity!(
    /// Frequency in hertz.
    Hertz, "Hz", "Creates a frequency from a value in hertz."
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius, "°C", "Creates a temperature from a value in degrees Celsius."
);
quantity!(
    /// Time in seconds.
    Seconds, "s", "Creates a duration from a value in seconds."
);
quantity!(
    /// Area in square millimetres (board or die area).
    SquareMillimeters, "mm²", "Creates an area from a value in square millimetres."
);
quantity!(
    /// Cost in United States dollars (bill-of-materials accounting).
    Usd, "$", "Creates a cost from a value in US dollars."
);

impl Volts {
    /// Creates a potential from a value in millivolts.
    ///
    /// Tolerance bands and power-gate drops are quoted in millivolts in the
    /// paper (e.g. a 25 mV TOB), so this constructor avoids sprinkling
    /// `* 1e-3` through the model code.
    #[inline]
    pub fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1e-3)
    }

    /// Returns the value in millivolts.
    #[inline]
    pub fn millivolts(self) -> f64 {
        self.get() * 1e3
    }
}

impl Ohms {
    /// Creates a resistance from a value in milliohms.
    ///
    /// Load-line and power-gate impedances are quoted in milliohms
    /// (Table 2 of the paper: 1–7 mΩ).
    #[inline]
    pub fn from_milliohms(mohm: f64) -> Self {
        Self::new(mohm * 1e-3)
    }

    /// Returns the value in milliohms.
    #[inline]
    pub fn milliohms(self) -> f64 {
        self.get() * 1e3
    }
}

impl Watts {
    /// Creates a power from a value in milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Returns the value in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.get() * 1e3
    }
}

impl Hertz {
    /// Creates a frequency from a value in megahertz.
    #[inline]
    pub fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Creates a frequency from a value in gigahertz.
    #[inline]
    pub fn from_gigahertz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// Returns the value in megahertz.
    #[inline]
    pub fn megahertz(self) -> f64 {
        self.get() * 1e-6
    }

    /// Returns the value in gigahertz.
    #[inline]
    pub fn gigahertz(self) -> f64 {
        self.get() * 1e-9
    }
}

impl Seconds {
    /// Creates a duration from a value in microseconds.
    ///
    /// Mode-switch and C-state latencies are quoted in microseconds
    /// (§6 of the paper: the full FlexWatts switch flow takes ≈ 94 µs).
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a duration from a value in milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms * 1e-3)
    }

    /// Returns the value in microseconds.
    #[inline]
    pub fn micros(self) -> f64 {
        self.get() * 1e6
    }

    /// Returns the value in milliseconds.
    #[inline]
    pub fn millis(self) -> f64 {
        self.get() * 1e3
    }
}

impl Amps {
    /// Returns the conduction loss `I²·R` dissipated by this current across
    /// a resistance — the dominant loss term of high-TDP MBVR/LDO PDNs
    /// (Fig. 5 of the paper).
    #[inline]
    pub fn squared_times(self, r: Ohms) -> Watts {
        Watts::new(self.get() * self.get() * r.get())
    }
}

// Physically meaningful cross-type arithmetic.

impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.get() * rhs.get())
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.get() / rhs.get())
    }
}

impl Div<Amps> for Watts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.get() / rhs.get())
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    #[inline]
    fn div(self, rhs: Amps) -> Ohms {
        Ohms::new(self.get() / rhs.get())
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.get() * rhs.get())
    }
}

impl Mul<Amps> for Ohms {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Amps) -> Volts {
        rhs * self
    }
}

impl Mul<Seconds> for Watts {
    /// Energy in joules, represented as a plain `f64` since no model derives
    /// further quantities from it.
    type Output = f64;
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.get() * rhs.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trips() {
        let v = Volts::new(1.0);
        let i = Amps::new(2.0);
        let r: Ohms = v / i;
        assert_eq!(r, Ohms::new(0.5));
        assert_eq!(i * r, v);
    }

    #[test]
    fn power_law_round_trips() {
        let p = Watts::new(10.0);
        let v = Volts::new(2.0);
        assert_eq!(p / v, Amps::new(5.0));
        assert_eq!(p / Amps::new(5.0), v);
        assert_eq!(v * Amps::new(5.0), p);
    }

    #[test]
    fn conduction_loss_matches_manual_computation() {
        let i = Amps::new(10.0);
        let r = Ohms::from_milliohms(2.5);
        assert!((i.squared_times(r).get() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions() {
        assert!((Volts::from_millivolts(18.0).get() - 0.018).abs() < 1e-12);
        assert!((Ohms::from_milliohms(7.0).milliohms() - 7.0).abs() < 1e-12);
        assert!((Hertz::from_gigahertz(4.0).megahertz() - 4000.0).abs() < 1e-9);
        assert!((Seconds::from_micros(94.0).millis() - 0.094).abs() < 1e-12);
        assert!((Watts::from_milliwatts(9.0).get() - 0.009).abs() < 1e-12);
    }

    #[test]
    fn sum_of_domain_powers() {
        let total: Watts = [Watts::new(0.6), Watts::new(0.5), Watts::new(0.58)].into_iter().sum();
        assert!((total.get() - 1.68).abs() < 1e-12);
    }

    #[test]
    fn like_division_is_dimensionless() {
        let ratio: f64 = Watts::new(3.0) / Watts::new(4.0);
        assert_eq!(ratio, 0.75);
    }

    #[test]
    fn display_includes_unit_symbol() {
        assert_eq!(format!("{:.1}", Watts::new(4.0)), "4.0 W");
        assert_eq!(format!("{:.2}", Volts::new(1.8)), "1.80 V");
        assert_eq!(format!("{}", Ohms::new(0.001)), "0.001 Ω");
    }

    #[test]
    fn energy_is_power_times_time() {
        let joules = Watts::new(2.0) * Seconds::from_millis(500.0);
        assert!((joules - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_minmax() {
        let v = Volts::new(1.5);
        assert_eq!(v.clamp(Volts::new(0.5), Volts::new(1.1)), Volts::new(1.1));
        assert_eq!(v.max(Volts::new(2.0)), Volts::new(2.0));
        assert_eq!(v.min(Volts::new(1.0)), Volts::new(1.0));
        assert_eq!((-v).abs(), v);
    }

    #[test]
    fn serde_round_trip_is_transparent() {
        let json = serde_json_like(Watts::new(4.5));
        assert_eq!(json, "4.5");
    }

    /// Minimal serialization check without pulling serde_json: transparent
    /// newtypes serialize exactly as their inner f64.
    fn serde_json_like(w: Watts) -> String {
        // Serialize through the Display of the inner value; the transparent
        // attribute guarantees the wire format equals the inner value.
        format!("{}", w.get())
    }
}
