//! Piecewise-linear curves and bilinear grids.
//!
//! PDNspot represents every empirically measured relationship — voltage-
//! regulator efficiency versus load current, leakage versus temperature,
//! voltage versus frequency, and the ETEE tables stored in PMU firmware —
//! as interpolated lookup structures, mirroring how a real power-management
//! unit stores such curves as firmware tables (§6 of the paper, footnote 11).
//!
//! [`Curve1`] is a strictly-monotone-axis piecewise-linear curve with
//! clamped extrapolation; [`Grid2`] is a rectilinear bilinear surface.

use crate::error::UnitsError;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Checks a segment hint against an axis: the hint `h` is the answer iff
/// `axis[h] <= x < axis[h + 1]` — exactly the bracket `partition_point`
/// would return, so taking the fast path never changes which segment (and
/// therefore which interpolation arithmetic) is used. On a miss the fresh
/// index is stored back with relaxed ordering; a stale value read by
/// another thread only costs that thread the binary search.
#[inline]
fn hinted_segment(axis: &[f64], hint: &AtomicUsize, x: f64) -> usize {
    let h = hint.load(Ordering::Relaxed);
    if h + 1 < axis.len() && axis[h] <= x && x < axis[h + 1] {
        return h;
    }
    let lo = axis.partition_point(|&a| a <= x) - 1;
    hint.store(lo, Ordering::Relaxed);
    lo
}

/// A one-dimensional piecewise-linear curve over a strictly increasing axis.
///
/// Evaluation outside the axis range clamps to the boundary values, which is
/// the behaviour PMU firmware uses for table lookups.
///
/// Lookups keep a segment-cursor cache: sweeps that walk the axis in
/// lattice order (the common access pattern of the grid evaluators) skip
/// the binary search entirely. The cursor is a cache, not part of the
/// curve's value — `clone`/`eq` ignore it, and hits and misses produce
/// bit-identical results.
///
/// # Examples
///
/// ```
/// use pdn_units::Curve1;
///
/// let eta = Curve1::from_points([(0.1, 0.55), (1.0, 0.80), (10.0, 0.90)])?;
/// assert_eq!(eta.eval(1.0), 0.80);
/// assert!((eta.eval(5.5) - 0.85).abs() < 1e-12);
/// assert_eq!(eta.eval(100.0), 0.90); // clamped
/// # Ok::<(), pdn_units::UnitsError>(())
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Curve1 {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Last-hit segment index (`lo` of the bracketing pair). Cache only.
    #[serde(skip)]
    hint: AtomicUsize,
}

impl Clone for Curve1 {
    fn clone(&self) -> Self {
        Self {
            xs: self.xs.clone(),
            ys: self.ys.clone(),
            hint: AtomicUsize::new(self.hint.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for Curve1 {
    fn eq(&self, other: &Self) -> bool {
        self.xs == other.xs && self.ys == other.ys
    }
}

impl Curve1 {
    /// Builds a curve from `(x, y)` points.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::TooFewPoints`] for fewer than two points,
    /// [`UnitsError::NonMonotonicAxis`] if the x-axis is not strictly
    /// increasing, and [`UnitsError::NotFinite`] if any coordinate is not
    /// finite.
    pub fn from_points<I>(points: I) -> Result<Self, UnitsError>
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        let (xs, ys): (Vec<f64>, Vec<f64>) = points.into_iter().unzip();
        Self::from_axes(xs, ys)
    }

    /// Builds a curve from separate x and y vectors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Curve1::from_points`]; additionally returns
    /// [`UnitsError::GridShapeMismatch`] if the vectors differ in length.
    pub fn from_axes(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, UnitsError> {
        if xs.len() != ys.len() {
            return Err(UnitsError::GridShapeMismatch { expected: xs.len(), got: ys.len() });
        }
        if xs.len() < 2 {
            return Err(UnitsError::TooFewPoints { got: xs.len(), need: 2 });
        }
        for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            if !x.is_finite() || !y.is_finite() {
                return Err(UnitsError::NotFinite { what: "curve point" });
            }
            if i > 0 && x <= xs[i - 1] {
                return Err(UnitsError::NonMonotonicAxis { index: i });
            }
        }
        Ok(Self { xs, ys, hint: AtomicUsize::new(0) })
    }

    /// Evaluates the curve at `x`, clamping outside the axis range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let lo = hinted_segment(&self.xs, &self.hint, x);
        let hi = lo + 1;
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// Evaluates the curve at `x` on a logarithmic x-axis (linear in
    /// `log10 x` between points). Used for VR efficiency curves whose load
    /// current spans decades (Fig. 3 of the paper).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` or any axis value is not positive.
    pub fn eval_logx(&self, x: f64) -> f64 {
        debug_assert!(x > 0.0, "log-axis evaluation requires positive x");
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let lo = hinted_segment(&self.xs, &self.hint, x);
        let hi = lo + 1;
        debug_assert!(self.xs[lo] > 0.0);
        let t = (x.log10() - self.xs[lo].log10()) / (self.xs[hi].log10() - self.xs[lo].log10());
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// Returns the inclusive x-axis domain `(min, max)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], self.xs[self.xs.len() - 1])
    }

    /// Returns the number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the curve has no knots (never true for a validated
    /// curve; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Iterates over the `(x, y)` knots.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    /// Returns the minimum y value over the knots.
    pub fn y_min(&self) -> f64 {
        self.ys.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Returns the maximum y value over the knots.
    pub fn y_max(&self) -> f64 {
        self.ys.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Applies `f` to every y value, returning a new curve.
    ///
    /// The x-axis is already validated on this curve, so only the mapped
    /// y values are re-checked for finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::NotFinite`] if `f` produces a non-finite
    /// value.
    pub fn map_y(&self, f: impl Fn(f64) -> f64) -> Result<Self, UnitsError> {
        let ys: Vec<f64> = self.ys.iter().map(|&y| f(y)).collect();
        if ys.iter().any(|y| !y.is_finite()) {
            return Err(UnitsError::NotFinite { what: "curve point" });
        }
        Ok(Self { xs: self.xs.clone(), ys, hint: AtomicUsize::new(0) })
    }
}

/// Incremental builder for [`Curve1`].
///
/// # Examples
///
/// ```
/// use pdn_units::Curve1Builder;
///
/// let mut b = Curve1Builder::new();
/// b.push(0.8e9, 0.55).push(4.0e9, 1.1);
/// let vf = b.build()?;
/// assert!((vf.eval(2.4e9) - 0.825).abs() < 1e-9);
/// # Ok::<(), pdn_units::UnitsError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Curve1Builder {
    points: Vec<(f64, f64)>,
}

impl Curve1Builder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a knot. Knots may be pushed in any order; they are sorted at
    /// build time (duplicate abscissae still fail validation).
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }

    /// Builds the curve, consuming the builder (no buffer copies).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Curve1::from_points`].
    pub fn build(self) -> Result<Curve1, UnitsError> {
        let mut pts = self.points;
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        Curve1::from_points(pts)
    }
}

/// A two-dimensional bilinear surface on a rectilinear grid.
///
/// Values are stored row-major: `values[r * cols + c]` is the value at
/// `(row_axis[r], col_axis[c])`. Evaluation clamps both axes, mirroring PMU
/// firmware table lookups. This is the storage format of the FlexWatts
/// predictor's ETEE curve sets (TDP × AR for each workload type).
///
/// # Examples
///
/// ```
/// use pdn_units::Grid2;
///
/// // ETEE over (TDP in W) × (AR) for one workload type.
/// let g = Grid2::from_rows(
///     vec![4.0, 50.0],        // TDP axis
///     vec![0.4, 0.8],         // AR axis
///     vec![0.70, 0.72,        // 4 W row
///          0.80, 0.84],       // 50 W row
/// )?;
/// assert!((g.eval(27.0, 0.6) - 0.765).abs() < 1e-12);
/// # Ok::<(), pdn_units::UnitsError>(())
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Grid2 {
    rows: Vec<f64>,
    cols: Vec<f64>,
    values: Vec<f64>,
    /// Last-hit segment cursors per axis. Caches only — `clone`/`eq`
    /// ignore them, and hits and misses produce bit-identical results.
    #[serde(skip)]
    row_hint: AtomicUsize,
    #[serde(skip)]
    col_hint: AtomicUsize,
}

impl Clone for Grid2 {
    fn clone(&self) -> Self {
        Self {
            rows: self.rows.clone(),
            cols: self.cols.clone(),
            values: self.values.clone(),
            row_hint: AtomicUsize::new(self.row_hint.load(Ordering::Relaxed)),
            col_hint: AtomicUsize::new(self.col_hint.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for Grid2 {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.values == other.values
    }
}

impl Grid2 {
    /// Builds a grid from its two axes and row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::TooFewPoints`] if either axis has fewer than
    /// two knots, [`UnitsError::NonMonotonicAxis`] if an axis is not
    /// strictly increasing, [`UnitsError::GridShapeMismatch`] if
    /// `values.len() != rows.len() * cols.len()`, and
    /// [`UnitsError::NotFinite`] if any value is not finite.
    pub fn from_rows(rows: Vec<f64>, cols: Vec<f64>, values: Vec<f64>) -> Result<Self, UnitsError> {
        for axis in [&rows, &cols] {
            if axis.len() < 2 {
                return Err(UnitsError::TooFewPoints { got: axis.len(), need: 2 });
            }
            for i in 1..axis.len() {
                if !axis[i].is_finite() || axis[i] <= axis[i - 1] {
                    return Err(UnitsError::NonMonotonicAxis { index: i });
                }
            }
        }
        let expected = rows.len() * cols.len();
        if values.len() != expected {
            return Err(UnitsError::GridShapeMismatch { expected, got: values.len() });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(UnitsError::NotFinite { what: "grid value" });
        }
        Ok(Self {
            rows,
            cols,
            values,
            row_hint: AtomicUsize::new(0),
            col_hint: AtomicUsize::new(0),
        })
    }

    /// Builds a grid by evaluating `f(row, col)` at every lattice point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Grid2::from_rows`].
    pub fn tabulate(
        rows: Vec<f64>,
        cols: Vec<f64>,
        mut f: impl FnMut(f64, f64) -> f64,
    ) -> Result<Self, UnitsError> {
        let mut values = Vec::with_capacity(rows.len() * cols.len());
        for &r in &rows {
            for &c in &cols {
                values.push(f(r, c));
            }
        }
        Self::from_rows(rows, cols, values)
    }

    /// Evaluates the surface at `(row, col)` with bilinear interpolation,
    /// clamping both coordinates to the grid domain.
    pub fn eval(&self, row: f64, col: f64) -> f64 {
        let (r0, r1, tr) = Self::bracket(&self.rows, &self.row_hint, row);
        let (c0, c1, tc) = Self::bracket(&self.cols, &self.col_hint, col);
        let nc = self.cols.len();
        let v00 = self.values[r0 * nc + c0];
        let v01 = self.values[r0 * nc + c1];
        let v10 = self.values[r1 * nc + c0];
        let v11 = self.values[r1 * nc + c1];
        let top = v00 + tc * (v01 - v00);
        let bot = v10 + tc * (v11 - v10);
        top + tr * (bot - top)
    }

    /// Returns `(lo, hi, t)` such that `axis[lo] ≤ x ≤ axis[hi]` with
    /// interpolation parameter `t`, clamped to the axis range.
    fn bracket(axis: &[f64], hint: &AtomicUsize, x: f64) -> (usize, usize, f64) {
        let n = axis.len();
        if x <= axis[0] {
            return (0, 0, 0.0);
        }
        if x >= axis[n - 1] {
            return (n - 1, n - 1, 0.0);
        }
        let lo = hinted_segment(axis, hint, x);
        let hi = lo + 1;
        let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
        (lo, hi, t)
    }

    /// Returns the row axis knots.
    pub fn row_axis(&self) -> &[f64] {
        &self.rows
    }

    /// Returns the column axis knots.
    pub fn col_axis(&self) -> &[f64] {
        &self.cols
    }

    /// Returns the grid dimensions as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows.len(), self.cols.len())
    }

    /// Total number of stored table entries — the firmware memory footprint
    /// proxy used by the predictor-resolution ablation.
    pub fn table_entries(&self) -> usize {
        self.values.len()
    }
}

/// Incremental builder for [`Grid2`] that collects one full row at a time.
#[derive(Debug, Clone, Default)]
pub struct Grid2Builder {
    cols: Vec<f64>,
    rows: Vec<f64>,
    values: Vec<f64>,
}

impl Grid2Builder {
    /// Creates a builder with a fixed column axis.
    pub fn new(cols: Vec<f64>) -> Self {
        Self { cols, rows: Vec::new(), values: Vec::new() }
    }

    /// Appends one row of values at row-coordinate `row`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the column-axis length.
    pub fn push_row(&mut self, row: f64, values: &[f64]) -> &mut Self {
        assert_eq!(values.len(), self.cols.len(), "row length must match column axis");
        self.rows.push(row);
        self.values.extend_from_slice(values);
        self
    }

    /// Builds the grid, consuming the builder (no buffer copies).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Grid2::from_rows`].
    pub fn build(self) -> Result<Grid2, UnitsError> {
        Grid2::from_rows(self.rows, self.cols, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_rejects_invalid_input() {
        assert!(Curve1::from_points([(0.0, 1.0)]).is_err());
        assert!(Curve1::from_points([(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(Curve1::from_points([(1.0, 1.0), (0.5, 2.0)]).is_err());
        assert!(Curve1::from_points([(0.0, f64::NAN), (1.0, 2.0)]).is_err());
    }

    #[test]
    fn curve_interpolates_and_clamps() {
        let c = Curve1::from_points([(0.0, 0.0), (2.0, 4.0)]).unwrap();
        assert_eq!(c.eval(1.0), 2.0);
        assert_eq!(c.eval(-5.0), 0.0);
        assert_eq!(c.eval(9.0), 4.0);
        assert_eq!(c.domain(), (0.0, 2.0));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn curve_hits_knots_exactly() {
        let c = Curve1::from_points([(1.0, 10.0), (2.0, 20.0), (4.0, 15.0)]).unwrap();
        for (x, y) in c.points() {
            assert_eq!(c.eval(x), y);
        }
        assert_eq!(c.y_min(), 10.0);
        assert_eq!(c.y_max(), 20.0);
    }

    #[test]
    fn logx_interpolation_is_linear_in_decades() {
        // Efficiency from 60% at 0.1 A to 80% at 10 A should be 70% at 1 A
        // on a log axis.
        let c = Curve1::from_points([(0.1, 0.60), (10.0, 0.80)]).unwrap();
        assert!((c.eval_logx(1.0) - 0.70).abs() < 1e-12);
        assert_eq!(c.eval_logx(0.01), 0.60);
        assert_eq!(c.eval_logx(100.0), 0.80);
    }

    #[test]
    fn builder_sorts_knots() {
        let mut b = Curve1Builder::new();
        b.push(3.0, 30.0).push(1.0, 10.0).push(2.0, 20.0);
        let c = b.build().unwrap();
        assert_eq!(c.eval(1.5), 15.0);
    }

    #[test]
    fn map_y_transforms_values() {
        let c = Curve1::from_points([(0.0, 1.0), (1.0, 2.0)]).unwrap();
        let doubled = c.map_y(|y| 2.0 * y).unwrap();
        assert_eq!(doubled.eval(1.0), 4.0);
        assert!(c.map_y(|y| y / 0.0).is_err());
    }

    #[test]
    fn hinted_eval_matches_fresh_curve_on_any_walk() {
        // The cursor cache must be invisible: evaluating a warm curve (hint
        // pointing anywhere) is bit-identical to evaluating a cold clone.
        let pts: Vec<(f64, f64)> = (0..12).map(|i| (i as f64, (i * i) as f64 * 0.37)).collect();
        let warm = Curve1::from_points(pts.clone()).unwrap();
        // Walk forward, backward, and jump around to exercise hits and misses.
        let walk: Vec<f64> = (0..120)
            .map(|i| (i as f64) * 0.1)
            .chain((0..120).rev().map(|i| (i as f64) * 0.1))
            .chain([7.3, 0.2, 10.9, 0.2, 5.5, 11.9, -1.0, 13.0])
            .collect();
        for &x in &walk {
            let cold = Curve1::from_points(pts.clone()).unwrap();
            assert_eq!(warm.eval(x).to_bits(), cold.eval(x).to_bits(), "eval({x})");
        }
        // eval_logx needs a strictly positive axis.
        let log_pts: Vec<(f64, f64)> = (0..10).map(|i| (10f64.powi(i - 4), i as f64)).collect();
        let warm_log = Curve1::from_points(log_pts.clone()).unwrap();
        for &x in &walk {
            let x = x.max(0.05);
            let cold = Curve1::from_points(log_pts.clone()).unwrap();
            assert_eq!(warm_log.eval_logx(x).to_bits(), cold.eval_logx(x).to_bits());
        }
    }

    #[test]
    fn hinted_grid_eval_matches_fresh_grid() {
        let g = |hint_state: &Grid2, r: f64, c: f64| hint_state.eval(r, c);
        let warm =
            Grid2::tabulate(vec![1.0, 2.0, 4.0, 8.0], vec![0.1, 0.4, 0.9], |r, c| r * c + 1.0)
                .unwrap();
        for &(r, c) in
            &[(3.0, 0.5), (1.5, 0.2), (7.9, 0.85), (0.0, 1.0), (9.0, 0.0), (3.0, 0.5), (2.0, 0.4)]
        {
            let cold =
                Grid2::tabulate(vec![1.0, 2.0, 4.0, 8.0], vec![0.1, 0.4, 0.9], |r, c| r * c + 1.0)
                    .unwrap();
            assert_eq!(g(&warm, r, c).to_bits(), cold.eval(r, c).to_bits(), "eval({r}, {c})");
        }
    }

    #[test]
    fn grid_validation() {
        assert!(Grid2::from_rows(vec![0.0], vec![0.0, 1.0], vec![1.0, 2.0]).is_err());
        assert!(Grid2::from_rows(vec![0.0, 1.0], vec![1.0, 0.5], vec![0.0; 4]).is_err());
        assert!(Grid2::from_rows(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]).is_err());
        assert!(Grid2::from_rows(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0, 2.0, f64::NAN])
            .is_err());
    }

    #[test]
    fn grid_bilinear_center() {
        let g = Grid2::from_rows(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0, 1.0, 2.0]).unwrap();
        assert_eq!(g.eval(0.5, 0.5), 1.0);
        assert_eq!(g.eval(0.0, 0.0), 0.0);
        assert_eq!(g.eval(1.0, 1.0), 2.0);
        // Clamped corners.
        assert_eq!(g.eval(-1.0, -1.0), 0.0);
        assert_eq!(g.eval(2.0, 2.0), 2.0);
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.table_entries(), 4);
    }

    #[test]
    fn grid_tabulate_matches_function_at_knots() {
        let g = Grid2::tabulate(vec![1.0, 2.0, 3.0], vec![10.0, 20.0], |r, c| r * c).unwrap();
        assert_eq!(g.eval(2.0, 20.0), 40.0);
        assert_eq!(g.eval(3.0, 10.0), 30.0);
    }

    #[test]
    fn grid_builder_accumulates_rows() {
        let mut b = Grid2Builder::new(vec![0.4, 0.8]);
        b.push_row(4.0, &[0.7, 0.72]).push_row(50.0, &[0.8, 0.84]);
        let g = b.build().unwrap();
        assert!((g.eval(27.0, 0.6) - 0.765).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn grid_builder_rejects_ragged_rows() {
        let mut b = Grid2Builder::new(vec![0.4, 0.8]);
        b.push_row(4.0, &[0.7]);
    }
}
