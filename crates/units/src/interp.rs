//! Interpolation over rectilinear grids.
//!
//! [`bilinear`] is the query primitive behind PDNspot's surface sampling
//! (`EteeSurface::sample`): computed (TDP × AR) surfaces are dense
//! lattices, and consumers — power-management firmware, plot overlays,
//! design-space search — want values between the knots.
//!
//! # Exactness contract
//!
//! A query landing exactly on a grid knot returns the stored value
//! **bit-for-bit**: every interpolation weight that would be zero is
//! short-circuited instead of multiplied out, so no `0.0 * x` or
//! `v + 0.0` rounding artefacts (including `-0.0` sign flips) can leak
//! into an on-knot answer.

/// Locates `v` on a strictly increasing axis.
///
/// Returns `(lo, hi, t)` with `axis[lo] <= v <= axis[hi]` and the
/// parametric offset `t ∈ [0, 1)` inside the cell. A query exactly on a
/// knot returns `(i, i, 0.0)`, which lets the caller skip the lerp
/// entirely (see the module-level exactness contract). Queries outside
/// `[axis[0], axis[last]]`, non-finite queries, and empty axes return
/// `None`.
fn locate(axis: &[f64], v: f64) -> Option<(usize, usize, f64)> {
    let n = axis.len();
    if n == 0 || !v.is_finite() || v < axis[0] || v > axis[n - 1] {
        return None;
    }
    // First index whose knot is >= v; equality is the on-knot fast path.
    let hi = axis.partition_point(|&k| k < v);
    if hi < n && axis[hi] == v {
        return Some((hi, hi, 0.0));
    }
    let lo = hi - 1;
    Some((lo, hi, (v - axis[lo]) / (axis[hi] - axis[lo])))
}

/// Linear interpolation that preserves endpoint bits: `t == 0` returns
/// `a` and `t == 1` returns `b` without arithmetic.
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    if t == 0.0 {
        a
    } else if t == 1.0 {
        b
    } else {
        a + t * (b - a)
    }
}

/// Bilinear interpolation of a row-major rectilinear grid.
///
/// `values` holds one value per `(x, y)` knot pair, x-major
/// (`values[i * ys.len() + j]` is the value at `(xs[i], ys[j])`). Both
/// axes must be strictly increasing; single-knot axes are allowed (the
/// query must then hit the knot exactly on that axis). Returns `None`
/// when the query lies outside the axis hull or is not finite. A query
/// on a knot returns the stored value bit-for-bit (see the module-level
/// exactness contract).
///
/// # Panics
///
/// Panics if `values.len() != xs.len() * ys.len()`.
///
/// # Examples
///
/// ```
/// let xs = [0.0, 10.0];
/// let ys = [0.0, 1.0];
/// let values = [0.0, 1.0, 2.0, 3.0]; // row-major: (0,0) (0,1) (10,0) (10,1)
/// assert_eq!(pdn_units::bilinear(&xs, &ys, &values, 0.0, 1.0), Some(1.0));
/// assert_eq!(pdn_units::bilinear(&xs, &ys, &values, 5.0, 0.5), Some(1.5));
/// assert_eq!(pdn_units::bilinear(&xs, &ys, &values, 11.0, 0.5), None);
/// ```
pub fn bilinear(xs: &[f64], ys: &[f64], values: &[f64], x: f64, y: f64) -> Option<f64> {
    assert_eq!(
        values.len(),
        xs.len() * ys.len(),
        "bilinear grid needs {}x{} values, got {}",
        xs.len(),
        ys.len(),
        values.len()
    );
    let (x0, x1, tx) = locate(xs, x)?;
    let (y0, y1, ty) = locate(ys, y)?;
    let at = |i: usize, j: usize| values[i * ys.len() + j];
    let row0 = lerp(at(x0, y0), at(x0, y1), ty);
    let row1 = lerp(at(x1, y0), at(x1, y1), ty);
    Some(lerp(row0, row1, tx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_knot_queries_return_stored_bits() {
        let xs = [4.0, 18.0, 50.0];
        let ys = [0.4, 0.56, 0.8];
        let values: Vec<f64> = (0..9).map(|i| 0.1 + 0.07 * i as f64).collect();
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                let got = bilinear(&xs, &ys, &values, x, y).unwrap();
                assert_eq!(got.to_bits(), values[i * 3 + j].to_bits(), "knot ({i}, {j})");
            }
        }
    }

    #[test]
    fn on_knot_exactness_survives_negative_zero() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        let values = [-0.0, 2.0, 3.0, 4.0];
        let got = bilinear(&xs, &ys, &values, 0.0, 0.0).unwrap();
        assert_eq!(got.to_bits(), (-0.0f64).to_bits(), "sign of -0.0 must be preserved");
    }

    #[test]
    fn interior_queries_interpolate_linearly() {
        // A plane v = 2x + 3y is reproduced exactly by bilinear
        // interpolation up to rounding.
        let xs = [0.0, 4.0, 10.0];
        let ys = [0.0, 1.0];
        let values: Vec<f64> =
            xs.iter().flat_map(|&x| ys.iter().map(move |&y| 2.0 * x + 3.0 * y)).collect();
        for (x, y) in [(2.0, 0.5), (7.0, 0.25), (9.9, 0.99)] {
            let got = bilinear(&xs, &ys, &values, x, y).unwrap();
            assert!((got - (2.0 * x + 3.0 * y)).abs() < 1e-12, "({x}, {y}) -> {got}");
        }
    }

    #[test]
    fn out_of_hull_and_non_finite_queries_return_none() {
        let xs = [4.0, 18.0];
        let ys = [0.4, 0.8];
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(bilinear(&xs, &ys, &values, 3.9, 0.5), None);
        assert_eq!(bilinear(&xs, &ys, &values, 18.1, 0.5), None);
        assert_eq!(bilinear(&xs, &ys, &values, 10.0, 0.39), None);
        assert_eq!(bilinear(&xs, &ys, &values, 10.0, 0.81), None);
        assert_eq!(bilinear(&xs, &ys, &values, f64::NAN, 0.5), None);
        assert_eq!(bilinear(&xs, &ys, &values, 10.0, f64::INFINITY), None);
    }

    #[test]
    fn single_knot_axes_accept_only_their_knot() {
        let xs = [18.0];
        let ys = [0.4, 0.8];
        let values = [0.6, 0.7];
        let mid = bilinear(&xs, &ys, &values, 18.0, 0.6).unwrap();
        assert!((mid - 0.65).abs() < 1e-12, "{mid}");
        assert_eq!(bilinear(&xs, &ys, &values, 17.9, 0.6), None);
    }

    #[test]
    #[should_panic(expected = "bilinear grid needs")]
    fn mismatched_value_count_panics() {
        bilinear(&[1.0, 2.0], &[1.0], &[0.0], 1.0, 1.0);
    }
}
