//! Firmware ETEE curve tables.
//!
//! A modern PMU stores model curves as firmware tables (footnote 11 of the
//! paper). The FlexWatts predictor stores one ETEE curve set per PDN mode:
//! a (TDP × AR) grid per workload type for active operation, plus one ETEE
//! value per package power state for idle operation (§6, Algorithm 1).

use pdn_proc::{PackageCState, SocSpec};
use pdn_units::{ApplicationRatio, Efficiency, Grid2, UnitsError, Watts};
use pdn_workload::WorkloadType;
use pdnspot::{MemoCache, Pdn, PdnError, Scenario};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A complete ETEE curve set for one PDN (mode): the firmware payload of
/// Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EteeCurveSet {
    /// (TDP, AR) → ETEE grids, one per active workload type.
    pub(crate) active: BTreeMap<WorkloadType, Grid2>,
    /// Package-power-state ETEE values (the Fig. 4j curve), per state,
    /// interpolated over TDP.
    pub(crate) idle: BTreeMap<PackageCState, Grid2>,
}

impl EteeCurveSet {
    /// Tabulates the curve set by running PDNspot over the (TDP × AR)
    /// lattice for every workload type, plus all package power states —
    /// exactly how the paper proposes filling the PMU tables (§6).
    ///
    /// `soc_for` builds the SoC at each TDP knot (normally
    /// `pdn_proc::client_soc`).
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors and grid-construction errors.
    pub fn tabulate(
        pdn: &dyn Pdn,
        tdp_axis: &[f64],
        ar_axis: &[f64],
        soc_for: impl Fn(Watts) -> SocSpec,
    ) -> Result<Self, PdnError> {
        Self::tabulate_with(pdn, tdp_axis, ar_axis, soc_for, None)
    }

    /// [`EteeCurveSet::tabulate`] with an optional shared [`MemoCache`]:
    /// retraining over overlapping lattices (mode-predictor ablations,
    /// fault campaigns) reuses previously evaluated `(PDN, scenario)`
    /// results instead of re-running the full PDNspot flow. Cache hits
    /// return bit-identical values, so the tables are the same either way.
    ///
    /// # Errors
    ///
    /// Propagates PDNspot evaluation errors and grid-construction errors.
    pub fn tabulate_with(
        pdn: &dyn Pdn,
        tdp_axis: &[f64],
        ar_axis: &[f64],
        soc_for: impl Fn(Watts) -> SocSpec,
        memo: Option<&MemoCache>,
    ) -> Result<Self, PdnError> {
        let evaluate = |scenario: &Scenario| match memo {
            Some(m) => m.evaluate(pdn, scenario),
            None => pdn.evaluate(scenario),
        };
        let mut active = BTreeMap::new();
        for wl in WorkloadType::ACTIVE_TYPES {
            let mut values = Vec::with_capacity(tdp_axis.len() * ar_axis.len());
            for &tdp in tdp_axis {
                let soc = soc_for(Watts::new(tdp));
                for &ar in ar_axis {
                    let ar = ApplicationRatio::new(ar).map_err(PdnError::Units)?;
                    let scenario = Scenario::active_fixed_tdp_frequency(&soc, wl, ar)?;
                    values.push(evaluate(&scenario)?.etee.get());
                }
            }
            let grid = Grid2::from_rows(tdp_axis.to_vec(), ar_axis.to_vec(), values)
                .map_err(PdnError::Units)?;
            active.insert(wl, grid);
        }

        let mut idle = BTreeMap::new();
        // Idle ETEE varies little with TDP; a two-knot axis suffices.
        let idle_tdps = [tdp_axis[0], tdp_axis[tdp_axis.len() - 1]];
        for state in PackageCState::ALL {
            let mut values = Vec::new();
            for &tdp in &idle_tdps {
                let soc = soc_for(Watts::new(tdp));
                let scenario = Scenario::idle(&soc, state);
                let etee = evaluate(&scenario)?.etee.get();
                // Store the same value on both AR knots (idle has no AR).
                values.push(etee);
                values.push(etee);
            }
            let grid = Grid2::from_rows(idle_tdps.to_vec(), vec![0.0, 1.0], values)
                .map_err(PdnError::Units)?;
            idle.insert(state, grid);
        }
        Ok(Self { active, idle })
    }

    /// Algorithm 1's `estimate_*_ETEE` for active operation: bilinear
    /// lookup over (TDP, AR) in the workload type's grid.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError`] only if the stored value is somehow invalid;
    /// battery-life lookups fall back to the single-thread grid.
    pub fn lookup_active(
        &self,
        workload_type: WorkloadType,
        tdp: Watts,
        ar: ApplicationRatio,
    ) -> Result<Efficiency, UnitsError> {
        let grid = self
            .active
            .get(&workload_type)
            .or_else(|| self.active.get(&WorkloadType::SingleThread))
            .expect("tabulation fills all active types");
        Efficiency::new(grid.eval(tdp.get(), ar.get()).clamp(1e-6, 1.0))
    }

    /// Algorithm 1's ETEE estimate for a package power state.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError`] only if the stored value is somehow invalid.
    pub fn lookup_idle(&self, state: PackageCState, tdp: Watts) -> Result<Efficiency, UnitsError> {
        let grid = self.idle.get(&state).expect("tabulation fills all states");
        Efficiency::new(grid.eval(tdp.get(), 0.5).clamp(1e-6, 1.0))
    }

    /// Total number of stored table entries — the firmware memory
    /// footprint, reported by the predictor-resolution ablation.
    pub fn table_entries(&self) -> usize {
        self.active.values().map(Grid2::table_entries).sum::<usize>()
            + self.idle.values().map(Grid2::table_entries).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_proc::client_soc;
    use pdnspot::{IvrPdn, MbvrPdn, ModelParams};

    fn small_set(pdn: &dyn Pdn) -> EteeCurveSet {
        EteeCurveSet::tabulate(pdn, &[4.0, 18.0, 50.0], &[0.4, 0.6, 0.8], client_soc).unwrap()
    }

    #[test]
    fn lookup_matches_direct_evaluation_at_knots() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let set = small_set(&pdn);
        let soc = client_soc(Watts::new(18.0));
        let ar = ApplicationRatio::new(0.6).unwrap();
        let direct = pdn
            .evaluate(
                &Scenario::active_fixed_tdp_frequency(&soc, WorkloadType::MultiThread, ar).unwrap(),
            )
            .unwrap()
            .etee;
        let table = set.lookup_active(WorkloadType::MultiThread, soc.tdp, ar).unwrap();
        assert!((direct.get() - table.get()).abs() < 1e-9);
    }

    #[test]
    fn interpolation_between_knots_is_sane() {
        let pdn = MbvrPdn::new(ModelParams::paper_defaults());
        let set = small_set(&pdn);
        let ar = ApplicationRatio::new(0.5).unwrap();
        let at_10 =
            set.lookup_active(WorkloadType::SingleThread, Watts::new(10.0), ar).unwrap().get();
        let at_4 =
            set.lookup_active(WorkloadType::SingleThread, Watts::new(4.0), ar).unwrap().get();
        let at_18 =
            set.lookup_active(WorkloadType::SingleThread, Watts::new(18.0), ar).unwrap().get();
        assert!(at_10 <= at_4.max(at_18) && at_10 >= at_4.min(at_18));
    }

    #[test]
    fn idle_lookup_reproduces_fig4j_gap() {
        let params = ModelParams::paper_defaults();
        let ivr = IvrPdn::new(params.clone());
        let mbvr = MbvrPdn::new(params);
        let set_ivr = small_set(&ivr);
        let set_mbvr = small_set(&mbvr);
        let tdp = Watts::new(18.0);
        let i = set_ivr.lookup_idle(PackageCState::C8, tdp).unwrap();
        let m = set_mbvr.lookup_idle(PackageCState::C8, tdp).unwrap();
        assert!(m.get() > i.get() + 0.08, "MBVR C8 {m} must dominate IVR {i}");
    }

    #[test]
    fn table_entries_counts_footprint() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let set = small_set(&pdn);
        // 3 workload types × 3×3 grid + 6 states × 2×2 grid.
        assert_eq!(set.table_entries(), 3 * 9 + 6 * 4);
    }

    #[test]
    fn memoized_tabulation_matches_plain_and_hits_on_retrain() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let plain = small_set(&pdn);
        let memo = MemoCache::new();
        let cold = EteeCurveSet::tabulate_with(
            &pdn,
            &[4.0, 18.0, 50.0],
            &[0.4, 0.6, 0.8],
            client_soc,
            Some(&memo),
        )
        .unwrap();
        assert_eq!(plain, cold, "memoization must not change a single table entry");
        assert_eq!(memo.stats().hits, 0, "first tabulation sees a cold cache");
        let warm = EteeCurveSet::tabulate_with(
            &pdn,
            &[4.0, 18.0, 50.0],
            &[0.4, 0.6, 0.8],
            client_soc,
            Some(&memo),
        )
        .unwrap();
        assert_eq!(plain, warm);
        let stats = memo.stats();
        assert_eq!(stats.misses as usize, memo.len(), "every distinct scenario cached once");
        assert!(stats.hit_rate() > 0.45, "retraining must be served from cache: {stats:?}");
    }

    #[test]
    fn battery_life_lookup_falls_back_to_single_thread() {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let set = small_set(&pdn);
        let ar = ApplicationRatio::new(0.5).unwrap();
        let bl = set.lookup_active(WorkloadType::BatteryLife, Watts::new(10.0), ar).unwrap();
        let st = set.lookup_active(WorkloadType::SingleThread, Watts::new(10.0), ar).unwrap();
        assert_eq!(bl, st);
    }
}
