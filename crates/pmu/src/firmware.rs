//! Firmware images for the predictor's ETEE curve sets.
//!
//! A real PMU stores its curves as tables in firmware flash (footnote 11
//! of the paper). This module serialises an [`EteeCurveSet`] into a
//! compact, versioned, checksummed binary image — the artefact a
//! production FlexWatts would ship inside its power-management firmware —
//! and parses it back with full validation. The image size is the honest
//! answer to "how much flash does the predictor cost?" (a few kilobytes
//! for the paper's table resolution).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  u32  = 0x50444E46 ("PDNF")
//! version u16 = 1
//! section count u16
//! per section:
//!   tag u8        (0 = active workload type, 1 = idle state)
//!   key u8        (WorkloadType / PackageCState discriminant)
//!   rows u16, cols u16
//!   row axis  [f64; rows]
//!   col axis  [f64; cols]
//!   values    [f64; rows*cols]
//! crc32 u32 over everything before it
//! ```

use crate::tables::EteeCurveSet;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pdn_proc::PackageCState;
use pdn_units::Grid2;
use pdn_workload::WorkloadType;
use std::collections::BTreeMap;
use std::fmt;

const MAGIC: u32 = 0x5044_4E46; // "PDNF"
const VERSION: u16 = 1;

/// Error produced when parsing a firmware image.
#[derive(Debug, Clone, PartialEq)]
pub enum FirmwareError {
    /// The image does not start with the PDNF magic.
    BadMagic(u32),
    /// The image version is not supported.
    UnsupportedVersion(u16),
    /// The image is shorter than its own headers claim.
    Truncated,
    /// The CRC32 over the payload does not match.
    ChecksumMismatch {
        /// CRC stored in the image.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A section carried an unknown tag or key.
    BadSection {
        /// The offending tag byte.
        tag: u8,
        /// The offending key byte.
        key: u8,
    },
    /// A section's grid failed validation.
    BadGrid(pdn_units::UnitsError),
    /// The image carries payload bytes after the last declared section —
    /// an oversized image whose extra content no parser field accounts
    /// for (a build bug, or smuggled data under a recomputed CRC).
    TrailingBytes {
        /// Number of unaccounted payload bytes before the CRC trailer.
        extra: usize,
    },
}

impl fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirmwareError::BadMagic(m) => write!(f, "bad firmware magic {m:#010x}"),
            FirmwareError::UnsupportedVersion(v) => write!(f, "unsupported firmware version {v}"),
            FirmwareError::Truncated => write!(f, "firmware image truncated"),
            FirmwareError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "firmware checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            FirmwareError::BadSection { tag, key } => {
                write!(f, "unknown firmware section tag {tag}/key {key}")
            }
            FirmwareError::BadGrid(e) => write!(f, "invalid firmware grid: {e}"),
            FirmwareError::TrailingBytes { extra } => {
                write!(f, "firmware image carries {extra} unaccounted trailing bytes")
            }
        }
    }
}

impl std::error::Error for FirmwareError {}

/// A serialised predictor curve set.
#[derive(Debug, Clone, PartialEq)]
pub struct FirmwareImage {
    bytes: Bytes,
}

impl FirmwareImage {
    /// Serialises a curve set into a firmware image.
    pub fn build(set: &EteeCurveSet) -> Self {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(VERSION);
        let sections = set.active.len() + set.idle.len();
        buf.put_u16_le(sections as u16);
        for (wl, grid) in &set.active {
            put_section(&mut buf, 0, workload_key(*wl), grid);
        }
        for (state, grid) in &set.idle {
            put_section(&mut buf, 1, state_key(*state), grid);
        }
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        Self { bytes: buf.freeze() }
    }

    /// The raw image bytes (what would be flashed).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The image size in bytes — the predictor's flash footprint.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty (never true for a built image).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Parses and validates an image back into a curve set.
    ///
    /// # Errors
    ///
    /// Returns a [`FirmwareError`] for malformed, truncated, corrupted, or
    /// version-mismatched images.
    pub fn parse(data: &[u8]) -> Result<EteeCurveSet, FirmwareError> {
        if data.len() < 12 {
            return Err(FirmwareError::Truncated);
        }
        let (payload, crc_bytes) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let computed = crc32(payload);
        if stored != computed {
            return Err(FirmwareError::ChecksumMismatch { stored, computed });
        }
        let mut buf = payload;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(FirmwareError::BadMagic(magic));
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(FirmwareError::UnsupportedVersion(version));
        }
        let sections = buf.get_u16_le() as usize;
        let mut active = BTreeMap::new();
        let mut idle = BTreeMap::new();
        for _ in 0..sections {
            if buf.remaining() < 6 {
                return Err(FirmwareError::Truncated);
            }
            let tag = buf.get_u8();
            let key = buf.get_u8();
            let rows = buf.get_u16_le() as usize;
            let cols = buf.get_u16_le() as usize;
            let need = 8 * (rows + cols + rows * cols);
            if buf.remaining() < need {
                return Err(FirmwareError::Truncated);
            }
            let mut read_f64s =
                |n: usize| -> Vec<f64> { (0..n).map(|_| buf.get_f64_le()).collect() };
            let row_axis = read_f64s(rows);
            let col_axis = read_f64s(cols);
            let values = read_f64s(rows * cols);
            let grid =
                Grid2::from_rows(row_axis, col_axis, values).map_err(FirmwareError::BadGrid)?;
            match tag {
                0 => {
                    let wl =
                        workload_from_key(key).ok_or(FirmwareError::BadSection { tag, key })?;
                    active.insert(wl, grid);
                }
                1 => {
                    let state =
                        state_from_key(key).ok_or(FirmwareError::BadSection { tag, key })?;
                    idle.insert(state, grid);
                }
                _ => return Err(FirmwareError::BadSection { tag, key }),
            }
        }
        if buf.remaining() > 0 {
            return Err(FirmwareError::TrailingBytes { extra: buf.remaining() });
        }
        Ok(EteeCurveSet { active, idle })
    }
}

fn put_section(buf: &mut BytesMut, tag: u8, key: u8, grid: &Grid2) {
    buf.put_u8(tag);
    buf.put_u8(key);
    let (rows, cols) = grid.shape();
    buf.put_u16_le(rows as u16);
    buf.put_u16_le(cols as u16);
    for &r in grid.row_axis() {
        buf.put_f64_le(r);
    }
    for &c in grid.col_axis() {
        buf.put_f64_le(c);
    }
    for r in 0..rows {
        for c in 0..cols {
            let row = grid.row_axis()[r];
            let col = grid.col_axis()[c];
            buf.put_f64_le(grid.eval(row, col));
        }
    }
}

fn workload_key(wl: WorkloadType) -> u8 {
    match wl {
        WorkloadType::SingleThread => 0,
        WorkloadType::MultiThread => 1,
        WorkloadType::Graphics => 2,
        WorkloadType::BatteryLife => 3,
    }
}

fn workload_from_key(key: u8) -> Option<WorkloadType> {
    Some(match key {
        0 => WorkloadType::SingleThread,
        1 => WorkloadType::MultiThread,
        2 => WorkloadType::Graphics,
        3 => WorkloadType::BatteryLife,
        _ => return None,
    })
}

fn state_key(state: PackageCState) -> u8 {
    match state {
        PackageCState::C0Min => 0,
        PackageCState::C2 => 2,
        PackageCState::C3 => 3,
        PackageCState::C6 => 6,
        PackageCState::C7 => 7,
        PackageCState::C8 => 8,
    }
}

fn state_from_key(key: u8) -> Option<PackageCState> {
    Some(match key {
        0 => PackageCState::C0Min,
        2 => PackageCState::C2,
        3 => PackageCState::C3,
        6 => PackageCState::C6,
        7 => PackageCState::C7,
        8 => PackageCState::C8,
        _ => return None,
    })
}

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_proc::client_soc;
    use pdn_units::{ApplicationRatio, Efficiency, Watts};
    use pdnspot::{IvrPdn, ModelParams};

    fn curve_set() -> EteeCurveSet {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        EteeCurveSet::tabulate(&pdn, &[4.0, 18.0, 50.0], &[0.4, 0.6, 0.8], client_soc).unwrap()
    }

    #[test]
    fn round_trip_preserves_every_lookup() {
        let original = curve_set();
        let image = FirmwareImage::build(&original);
        let parsed = FirmwareImage::parse(image.as_bytes()).unwrap();
        for wl in WorkloadType::ACTIVE_TYPES {
            for tdp in [4.0, 11.0, 18.0, 31.0, 50.0] {
                for ar in [0.4, 0.55, 0.8] {
                    let a: Efficiency = original
                        .lookup_active(wl, Watts::new(tdp), ApplicationRatio::new(ar).unwrap())
                        .unwrap();
                    let b = parsed
                        .lookup_active(wl, Watts::new(tdp), ApplicationRatio::new(ar).unwrap())
                        .unwrap();
                    assert!((a.get() - b.get()).abs() < 1e-12);
                }
            }
        }
        for state in PackageCState::ALL {
            let a = original.lookup_idle(state, Watts::new(25.0)).unwrap();
            let b = parsed.lookup_idle(state, Watts::new(25.0)).unwrap();
            assert!((a.get() - b.get()).abs() < 1e-12);
        }
    }

    #[test]
    fn image_size_is_a_few_kilobytes() {
        let image = FirmwareImage::build(&curve_set());
        assert!(!image.is_empty());
        // 3 types × 3×3 grid + 6 states × 2×2 grid, f64 payload + axes.
        assert!(image.len() > 300 && image.len() < 4096, "flash footprint = {} bytes", image.len());
    }

    #[test]
    fn corruption_is_detected() {
        let image = FirmwareImage::build(&curve_set());
        let mut corrupted = image.as_bytes().to_vec();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x40;
        assert!(matches!(
            FirmwareImage::parse(&corrupted),
            Err(FirmwareError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_and_bad_magic_are_detected() {
        let image = FirmwareImage::build(&curve_set());
        assert_eq!(FirmwareImage::parse(&image.as_bytes()[..8]), Err(FirmwareError::Truncated));
        let mut bad = image.as_bytes().to_vec();
        bad[0] ^= 0xFF;
        // Flipping the magic also breaks the CRC; fix the CRC to isolate
        // the magic check.
        let len = bad.len();
        let crc = super::crc32(&bad[..len - 4]);
        bad[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(FirmwareImage::parse(&bad), Err(FirmwareError::BadMagic(_))));
    }

    #[test]
    fn oversized_images_are_rejected_even_with_a_valid_crc() {
        // Padding after the last section is invisible to the section
        // walk, so a hostile (or buggy) flasher could hide data there and
        // recompute the CRC. The parser must account for every byte.
        let image = FirmwareImage::build(&curve_set());
        let mut oversized = image.as_bytes()[..image.len() - 4].to_vec();
        oversized.extend_from_slice(&[0xAB; 7]);
        let crc = super::crc32(&oversized);
        oversized.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            FirmwareImage::parse(&oversized),
            Err(FirmwareError::TrailingBytes { extra: 7 })
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 of "123456789".
        assert_eq!(super::crc32(b"123456789"), 0xCBF4_3926);
    }
}
