//! Power-budget management.
//!
//! The PMU allocates a share of the TDP to the SA and IO domains (whose
//! power is nearly constant), and the remainder to the compute domains,
//! split between cores and graphics according to the workload type
//! (§3.4/§7.1 of the paper). It also tracks a running average of platform
//! power (the RAPL mechanism) to decide whether the budget allows a
//! frequency increase.

use pdn_units::{Ratio, Seconds, Watts};
use pdn_workload::WorkloadType;
use serde::{Deserialize, Serialize};

/// The PMU's power-budget manager.
///
/// # Examples
///
/// ```
/// use pdn_pmu::PowerBudgetManager;
/// use pdn_units::Watts;
/// use pdn_workload::WorkloadType;
///
/// let mut pbm = PowerBudgetManager::new(Watts::new(18.0), Watts::new(2.0));
/// let split = pbm.compute_budget(WorkloadType::Graphics);
/// assert!(split.gfx > split.cores, "graphics workloads feed the GPU");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBudgetManager {
    tdp: Watts,
    sa_io_reserve: Watts,
    /// Exponentially weighted moving average of platform power.
    average_power: Watts,
    /// EWMA time constant.
    time_constant: Seconds,
}

/// A compute-budget split between cores and graphics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetSplit {
    /// Budget allocated to the CPU cores (and LLC).
    pub cores: Watts,
    /// Budget allocated to the graphics engines.
    pub gfx: Watts,
}

impl PowerBudgetManager {
    /// Creates a budget manager for a TDP with a fixed SA+IO reserve.
    pub fn new(tdp: Watts, sa_io_reserve: Watts) -> Self {
        Self {
            tdp,
            sa_io_reserve,
            average_power: Watts::ZERO,
            time_constant: Seconds::from_millis(28.0),
        }
    }

    /// The compute budget (TDP minus the SA/IO reserve), split by workload
    /// type: CPU workloads give graphics nothing; graphics workloads keep
    /// 10–20 % for the cores (§7.1).
    pub fn compute_budget(&self, workload_type: WorkloadType) -> BudgetSplit {
        let compute = (self.tdp - self.sa_io_reserve).max(Watts::ZERO);
        let core_share: Ratio = workload_type.core_budget_share();
        BudgetSplit {
            cores: compute * core_share.get(),
            gfx: compute * core_share.complement().get(),
        }
    }

    /// Feeds one platform power sample into the running average.
    pub fn observe(&mut self, power: Watts, dt: Seconds) {
        let alpha = (dt.get() / self.time_constant.get()).clamp(0.0, 1.0);
        self.average_power = self.average_power * (1.0 - alpha) + power * alpha;
    }

    /// The current running-average platform power.
    pub fn average_power(&self) -> Watts {
        self.average_power
    }

    /// Whether the running average leaves headroom under the TDP.
    pub fn has_headroom(&self) -> bool {
        self.average_power < self.tdp
    }

    /// The configured TDP (runtime-configurable via cTDP, §6).
    pub fn tdp(&self) -> Watts {
        self.tdp
    }

    /// Reconfigures the TDP (the cTDP flow).
    pub fn set_tdp(&mut self, tdp: Watts) {
        self.tdp = tdp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_workloads_get_the_whole_compute_budget() {
        let pbm = PowerBudgetManager::new(Watts::new(18.0), Watts::new(2.0));
        let split = pbm.compute_budget(WorkloadType::MultiThread);
        assert!((split.cores.get() - 16.0).abs() < 1e-9);
        assert_eq!(split.gfx, Watts::ZERO);
    }

    #[test]
    fn graphics_split_matches_section7() {
        let pbm = PowerBudgetManager::new(Watts::new(18.0), Watts::new(2.0));
        let split = pbm.compute_budget(WorkloadType::Graphics);
        let core_frac = split.cores.get() / 16.0;
        assert!((0.10..=0.20).contains(&core_frac), "core share {core_frac}");
        assert!((split.cores + split.gfx - Watts::new(16.0)).abs().get() < 1e-9);
    }

    #[test]
    fn ewma_converges_to_steady_power() {
        let mut pbm = PowerBudgetManager::new(Watts::new(10.0), Watts::new(1.5));
        for _ in 0..300 {
            pbm.observe(Watts::new(8.0), Seconds::from_millis(1.0));
        }
        assert!((pbm.average_power().get() - 8.0).abs() < 0.05);
        assert!(pbm.has_headroom());
        for _ in 0..300 {
            pbm.observe(Watts::new(12.0), Seconds::from_millis(1.0));
        }
        assert!(!pbm.has_headroom());
    }

    #[test]
    fn ctdp_reconfiguration() {
        let mut pbm = PowerBudgetManager::new(Watts::new(10.0), Watts::new(1.5));
        pbm.set_tdp(Watts::new(25.0));
        assert_eq!(pbm.tdp(), Watts::new(25.0));
        let split = pbm.compute_budget(WorkloadType::SingleThread);
        assert!((split.cores.get() - 23.5).abs() < 1e-9);
    }

    #[test]
    fn reserve_larger_than_tdp_saturates_at_zero() {
        let pbm = PowerBudgetManager::new(Watts::new(1.0), Watts::new(2.0));
        let split = pbm.compute_budget(WorkloadType::MultiThread);
        assert_eq!(split.cores, Watts::ZERO);
        assert_eq!(split.gfx, Watts::ZERO);
    }
}
