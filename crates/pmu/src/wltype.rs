//! Workload-type classification from domain power states.
//!
//! §6: "The PMU estimates the workload type based on the power state of
//! the cores and graphics engines. If the graphics engines are active, the
//! workload type is set to graphics; if more than one core is active and
//! graphics is idle, it is set to multi-threaded."

use pdn_proc::{DomainKind, DomainTable, PackageCState};
use pdn_workload::WorkloadType;

/// Classifies the running workload from per-domain activity flags and the
/// current package power state.
pub fn classify_workload(
    powered: &DomainTable<bool>,
    package_state: Option<PackageCState>,
) -> WorkloadType {
    if let Some(state) = package_state {
        if !state.compute_powered() {
            return WorkloadType::BatteryLife;
        }
    }
    let on = |k: DomainKind| *powered.get(k);
    if on(DomainKind::Gfx) {
        WorkloadType::Graphics
    } else if on(DomainKind::Core0) && on(DomainKind::Core1) {
        WorkloadType::MultiThread
    } else if on(DomainKind::Core0) || on(DomainKind::Core1) {
        WorkloadType::SingleThread
    } else {
        WorkloadType::BatteryLife
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states(core0: bool, core1: bool, gfx: bool) -> DomainTable<bool> {
        DomainTable::from_fn(|k| match k {
            DomainKind::Core0 => core0,
            DomainKind::Core1 => core1,
            DomainKind::Gfx => gfx,
            _ => false,
        })
    }

    #[test]
    fn graphics_dominates() {
        assert_eq!(classify_workload(&states(true, true, true), None), WorkloadType::Graphics);
        assert_eq!(classify_workload(&states(false, false, true), None), WorkloadType::Graphics);
    }

    #[test]
    fn core_count_separates_st_and_mt() {
        assert_eq!(classify_workload(&states(true, true, false), None), WorkloadType::MultiThread);
        assert_eq!(
            classify_workload(&states(true, false, false), None),
            WorkloadType::SingleThread
        );
        assert_eq!(
            classify_workload(&states(false, true, false), None),
            WorkloadType::SingleThread
        );
    }

    #[test]
    fn idle_states_classify_as_battery_life() {
        assert_eq!(
            classify_workload(&states(true, true, true), Some(PackageCState::C8)),
            WorkloadType::BatteryLife
        );
        assert_eq!(
            classify_workload(&states(false, false, false), None),
            WorkloadType::BatteryLife
        );
    }

    #[test]
    fn c0min_classifies_by_domain_activity() {
        assert_eq!(
            classify_workload(&states(true, true, false), Some(PackageCState::C0Min)),
            WorkloadType::MultiThread
        );
    }
}
