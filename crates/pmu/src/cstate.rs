//! The package C-state driver.
//!
//! The PMU carries out package C-state transitions (context save, clock
//! and voltage ramp, context restore) and therefore always knows the
//! current package power state (§6). FlexWatts reuses the C6 entry/exit
//! flow to reconfigure the hybrid PDN while the compute domains are
//! guaranteed idle.

use pdn_proc::PackageCState;
use pdn_units::Seconds;
use serde::{Deserialize, Serialize};

/// Tracks the package power state and accounts transition latencies.
///
/// # Examples
///
/// ```
/// use pdn_pmu::CStateDriver;
/// use pdn_proc::PackageCState;
///
/// let mut driver = CStateDriver::new();
/// let entry = driver.enter(PackageCState::C6);
/// assert!((entry.micros() - 45.0).abs() < 1e-9);
/// let exit = driver.exit();
/// assert!((exit.micros() - 30.0).abs() < 1e-9);
/// assert!(driver.current().is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CStateDriver {
    current: Option<PackageCState>,
    transitions: u64,
    total_transition_time: Seconds,
}

impl CStateDriver {
    /// Creates a driver in the active (C0) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a driver in the active state with its transition
    /// counters restored — the checkpoint-resume primitive: a trace
    /// replay checkpoints only between intervals, where the driver is
    /// always active, so the counters are its entire state.
    pub fn resume(transitions: u64, total_transition_time: Seconds) -> Self {
        Self { current: None, transitions, total_transition_time }
    }

    /// The current package C-state (`None` = active C0).
    pub fn current(&self) -> Option<PackageCState> {
        self.current
    }

    /// Enters a package C-state, returning the entry latency. Entering the
    /// state the package is already in is free.
    pub fn enter(&mut self, state: PackageCState) -> Seconds {
        if self.current == Some(state) {
            return Seconds::ZERO;
        }
        // A state change between two C-states goes through C0.
        let mut latency = Seconds::ZERO;
        if self.current.is_some() {
            latency += self.exit();
        }
        latency += state.latency().entry;
        self.current = Some(state);
        self.transitions += 1;
        self.total_transition_time += latency;
        latency
    }

    /// Exits to the active state, returning the exit latency.
    pub fn exit(&mut self) -> Seconds {
        match self.current.take() {
            Some(state) => {
                let latency = state.latency().exit;
                self.transitions += 1;
                self.total_transition_time += latency;
                latency
            }
            None => Seconds::ZERO,
        }
    }

    /// Number of state transitions performed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Total time spent in transition flows.
    pub fn total_transition_time(&self) -> Seconds {
        self.total_transition_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reentry_is_free() {
        let mut d = CStateDriver::new();
        d.enter(PackageCState::C8);
        assert_eq!(d.enter(PackageCState::C8), Seconds::ZERO);
        assert_eq!(d.transitions(), 1);
    }

    #[test]
    fn state_change_routes_through_c0() {
        let mut d = CStateDriver::new();
        d.enter(PackageCState::C2);
        let latency = d.enter(PackageCState::C8);
        // C2 exit (2 µs) + C8 entry (100 µs).
        assert!((latency.micros() - 102.0).abs() < 1e-9);
        assert_eq!(d.current(), Some(PackageCState::C8));
    }

    #[test]
    fn accounting_accumulates() {
        let mut d = CStateDriver::new();
        d.enter(PackageCState::C6);
        d.exit();
        assert_eq!(d.transitions(), 2);
        assert!((d.total_transition_time().micros() - 75.0).abs() < 1e-9);
        assert_eq!(d.exit(), Seconds::ZERO, "exiting C0 is a no-op");
    }
}
