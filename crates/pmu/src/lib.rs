//! Power-management-unit (PMU) simulation substrate.
//!
//! FlexWatts's mode predictor runs inside the PMU firmware of a client
//! processor and consumes inputs the PMU already tracks for its other
//! algorithms (§6 of the paper): the configured TDP, the application ratio
//! estimated by per-domain activity sensors, the workload type derived
//! from domain power states, and the current package power state. This
//! crate models those PMU facilities:
//!
//! * [`sensors`] — weighted-event activity sensors with calibration error
//!   and quantisation, the runtime AR proxy;
//! * [`wltype`] — workload-type classification from domain activity;
//! * [`budget`] — the power-budget manager that splits the TDP between
//!   compute domains and tracks a running average;
//! * [`cstate`] — the package C-state driver whose C6 flow FlexWatts
//!   reuses for voltage-noise-free mode switching;
//! * [`tables`] — firmware curve tables (the storage format of the
//!   predictor's ETEE curve sets, footnote 11).
//!
//! # Examples
//!
//! ```
//! use pdn_pmu::sensors::ActivitySensorBank;
//! use pdn_units::ApplicationRatio;
//!
//! let bank = ActivitySensorBank::new(7);
//! let truth = ApplicationRatio::new(0.62)?;
//! let estimate = bank.estimate(pdn_proc::DomainKind::Core0, truth);
//! assert!((estimate.get() - truth.get()).abs() < 0.06);
//! # Ok::<(), pdn_units::UnitsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
pub mod cstate;
pub mod firmware;
pub mod sensors;
pub mod tables;
pub mod wltype;

pub use budget::PowerBudgetManager;
pub use cstate::CStateDriver;
pub use firmware::{FirmwareError, FirmwareImage};
pub use sensors::ActivitySensorBank;
pub use tables::EteeCurveSet;
pub use wltype::classify_workload;
