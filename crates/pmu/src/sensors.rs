//! Per-domain activity sensors.
//!
//! Modern client processors implement activity sensors in each domain
//! (execution-port occupancy, memory stalls, instruction-mix events); a
//! dedicated weight per event is calibrated post-silicon, and the weighted
//! sum is sent to the PMU every millisecond as a proxy for the application
//! ratio (§6 of the paper). The model here reproduces the three error
//! sources of such a proxy: per-domain calibration error (the weights are
//! fitted, not exact), counter quantisation, and per-sample jitter.

use pdn_proc::DomainKind;
use pdn_units::ApplicationRatio;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Quantisation of the weighted event sum the domain reports (6-bit).
const QUANT_STEPS: f64 = 64.0;

/// A bank of per-domain activity sensors.
///
/// Estimation is deterministic under the construction seed: the
/// calibration error is fixed per domain at "post-silicon calibration"
/// time, while jitter varies per sample via a counter-based hash.
#[derive(Debug)]
pub struct ActivitySensorBank {
    calibration_gain: BTreeMap<DomainKind, f64>,
    jitter_amplitude: f64,
    samples: AtomicU64,
    seed: u64,
}

impl ActivitySensorBank {
    /// Calibrates a sensor bank (one fixed gain error per domain drawn
    /// from the seed, within ±2 %).
    pub fn new(seed: u64) -> Self {
        let mut calibration_gain = BTreeMap::new();
        for (i, kind) in DomainKind::ALL.into_iter().enumerate() {
            let h = splitmix(seed.wrapping_add(i as u64 + 1));
            let gain = 1.0 + (to_unit(h) - 0.5) * 0.04; // ±2 %
            calibration_gain.insert(kind, gain);
        }
        Self { calibration_gain, jitter_amplitude: 0.01, samples: AtomicU64::new(0), seed }
    }

    /// Rebuilds a bank mid-stream: the same calibration as
    /// [`ActivitySensorBank::new`] with the sample counter advanced to
    /// `samples`. A resumed bank continues the per-sample jitter stream
    /// exactly where the original left off — the primitive that lets a
    /// checkpointed trace replay stay bit-identical to an uninterrupted
    /// one.
    pub fn resume(seed: u64, samples: u64) -> Self {
        let bank = Self::new(seed);
        bank.samples.store(samples, Ordering::Relaxed);
        bank
    }

    /// Produces the sensor's AR estimate for a domain whose true
    /// application ratio is `truth`.
    pub fn estimate(&self, domain: DomainKind, truth: ApplicationRatio) -> ApplicationRatio {
        let n = self.samples.fetch_add(1, Ordering::Relaxed);
        let gain = self.calibration_gain[&domain];
        let jitter_h = splitmix(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let jitter = (to_unit(jitter_h) - 0.5) * 2.0 * self.jitter_amplitude;
        let raw = truth.get() * gain + jitter;
        let quantised = (raw * QUANT_STEPS).round() / QUANT_STEPS;
        ApplicationRatio::new(quantised.clamp(1.0 / QUANT_STEPS, 1.0))
            .expect("clamped estimate is valid")
    }

    /// Number of samples taken so far (the per-millisecond reporting
    /// cadence of §6 maps one sample per reporting period).
    pub fn samples_taken(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar(v: f64) -> ApplicationRatio {
        ApplicationRatio::new(v).unwrap()
    }

    #[test]
    fn estimates_track_truth_within_tolerance() {
        let bank = ActivitySensorBank::new(3);
        for truth in [0.2, 0.4, 0.56, 0.8, 1.0] {
            let est = bank.estimate(DomainKind::Core0, ar(truth));
            assert!((est.get() - truth).abs() < 0.06, "estimate {est} too far from truth {truth}");
        }
    }

    #[test]
    fn calibration_error_is_fixed_per_domain() {
        let bank = ActivitySensorBank::new(5);
        // Average many samples: jitter cancels, gain bias remains.
        let truth = ar(0.5);
        let mean: f64 =
            (0..256).map(|_| bank.estimate(DomainKind::Gfx, truth).get()).sum::<f64>() / 256.0;
        let bias = mean / 0.5;
        assert!((bias - 1.0).abs() < 0.025, "gain bias {bias}");
        assert!(bank.samples_taken() >= 256);
    }

    #[test]
    fn quantisation_produces_discrete_levels() {
        let bank = ActivitySensorBank::new(9);
        let est = bank.estimate(DomainKind::Sa, ar(0.37));
        let steps = est.get() * QUANT_STEPS;
        assert!((steps - steps.round()).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_give_different_calibration() {
        let a = ActivitySensorBank::new(1);
        let b = ActivitySensorBank::new(2);
        let truth = ar(0.6);
        let mean = |bank: &ActivitySensorBank| -> f64 {
            (0..128).map(|_| bank.estimate(DomainKind::Llc, truth).get()).sum::<f64>() / 128.0
        };
        assert!((mean(&a) - mean(&b)).abs() > 1e-4);
    }
}
