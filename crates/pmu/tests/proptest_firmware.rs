//! Property-based tests of the firmware parser's robustness contract:
//! `FirmwareImage::parse` must *never* panic — for any byte string it
//! either returns a valid curve set or a descriptive [`FirmwareError`] —
//! and any corruption of a well-formed image is rejected.

use pdn_pmu::{EteeCurveSet, FirmwareError, FirmwareImage};
use pdn_proc::client_soc;
use pdnspot::{IvrPdn, ModelParams};
use proptest::collection::vec;
use proptest::prelude::*;

fn reference_image() -> &'static FirmwareImage {
    static IMAGE: std::sync::OnceLock<FirmwareImage> = std::sync::OnceLock::new();
    IMAGE.get_or_init(|| {
        let pdn = IvrPdn::new(ModelParams::paper_defaults());
        let set =
            EteeCurveSet::tabulate(&pdn, &[4.0, 18.0, 50.0], &[0.4, 0.6, 0.8], client_soc).unwrap();
        FirmwareImage::build(&set)
    })
}

/// CRC-32 (IEEE), reimplemented here so the tests can forge valid
/// trailers and reach the parser stages behind the checksum gate.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn with_fixed_crc(mut payload: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&payload);
    payload.extend_from_slice(&crc.to_le_bytes());
    payload
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic the parser.
    #[test]
    fn parse_never_panics_on_arbitrary_bytes(data in vec(any::<u8>(), 0..512)) {
        let _ = FirmwareImage::parse(&data);
    }

    /// Arbitrary payloads behind a *valid* CRC trailer still never panic:
    /// this drives the magic/version/section machinery directly instead
    /// of dying at the checksum gate.
    #[test]
    fn parse_never_panics_behind_a_forged_crc(payload in vec(any::<u8>(), 8..256)) {
        let _ = FirmwareImage::parse(&with_fixed_crc(payload));
    }

    /// Flipping any single bit of a well-formed image is detected — the
    /// CRC covers every payload byte, and the trailer is the CRC itself.
    #[test]
    fn any_single_bit_flip_is_rejected(offset in 0usize..4096, bit in 0u8..8) {
        let image = reference_image();
        let mut corrupt = image.as_bytes().to_vec();
        let at = offset % corrupt.len();
        corrupt[at] ^= 1 << bit;
        prop_assert!(
            FirmwareImage::parse(&corrupt).is_err(),
            "bit {bit} of byte {at} flipped silently"
        );
    }

    /// Every truncation of a well-formed image is rejected, and the
    /// original still parses (the strictness is not over-eager).
    #[test]
    fn truncation_is_always_rejected(cut in 1usize..4096) {
        let image = reference_image();
        let len = image.len();
        let keep = len - 1 - (cut % (len - 1));
        prop_assert!(FirmwareImage::parse(&image.as_bytes()[..keep]).is_err());
        prop_assert!(FirmwareImage::parse(image.as_bytes()).is_ok());
    }

    /// Padding a well-formed image with extra payload bytes — even under
    /// a freshly computed, valid CRC — is rejected as oversized.
    #[test]
    fn oversized_payloads_are_rejected(extra in vec(any::<u8>(), 1..64)) {
        let image = reference_image();
        let mut payload = image.as_bytes()[..image.len() - 4].to_vec();
        let n = extra.len();
        payload.extend_from_slice(&extra);
        prop_assert_eq!(
            FirmwareImage::parse(&with_fixed_crc(payload)),
            Err(FirmwareError::TrailingBytes { extra: n })
        );
    }
}
