//! Package C-states.
//!
//! Client processors reduce idle power through package C-states
//! (C2/C3/C6/C7/C8) and through an active state at minimum frequency
//! (C0MIN). Battery-life workloads spend most of their time deep in these
//! states (§5 Observation 3: video playback is 10 % C0MIN, 5 % C2, 85 % C8),
//! and FlexWatts reuses the package-C6 entry/exit flow to switch PDN modes
//! without voltage noise (§6).
//!
//! Per the paper's battery-life methodology (§7.1), the nominal power of
//! each state is the same at all TDPs, so the state powers here are fixed
//! paper-calibrated values rather than functions of the SoC design point.

use crate::domain::DomainKind;
use pdn_units::{Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Package-level power states, ordered from shallowest to deepest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PackageCState {
    /// Active state with cores and graphics at their minimum frequencies
    /// (the paper's "C0MIN").
    C0Min,
    /// Compute domains power-gated; the display controller fetches frame
    /// data from main memory.
    C2,
    /// Clocks stopped more aggressively; memory in self-refresh entry.
    C3,
    /// Compute contexts saved to an always-on SRAM; cores, LLC, and
    /// graphics fully off. FlexWatts performs its mode switch here.
    C6,
    /// LLC flushed; deeper uncore gating.
    C7,
    /// Deepest state: only the display controller and always-on logic are
    /// alive, reading frames from a local buffer.
    C8,
}

impl PackageCState {
    /// All modelled states, shallowest first (the Fig. 4j x-axis).
    pub const ALL: [PackageCState; 6] = [
        PackageCState::C0Min,
        PackageCState::C2,
        PackageCState::C3,
        PackageCState::C6,
        PackageCState::C7,
        PackageCState::C8,
    ];

    /// Whether the compute domains (cores, LLC, graphics) are powered.
    pub fn compute_powered(self) -> bool {
        matches!(self, PackageCState::C0Min)
    }

    /// Whether this state counts as active residency (C0).
    pub fn is_active(self) -> bool {
        matches!(self, PackageCState::C0Min)
    }

    /// Paper-calibrated per-domain nominal power in this state.
    ///
    /// Totals match §5 Observation 3: C0MIN = 2.5 W, C2 = 1.2 W,
    /// C8 = 0.13 W, with intermediate states interpolated.
    pub fn nominal_domain_powers(self) -> BTreeMap<DomainKind, Watts> {
        use DomainKind::*;
        let entries: &[(DomainKind, f64)] = match self {
            PackageCState::C0Min => {
                &[(Core0, 0.35), (Core1, 0.35), (Llc, 0.35), (Gfx, 0.55), (Sa, 0.60), (Io, 0.30)]
            }
            PackageCState::C2 => &[(Llc, 0.10), (Sa, 0.75), (Io, 0.35)],
            PackageCState::C3 => &[(Llc, 0.08), (Sa, 0.55), (Io, 0.27)],
            PackageCState::C6 => &[(Sa, 0.32), (Io, 0.13)],
            PackageCState::C7 => &[(Sa, 0.19), (Io, 0.06)],
            PackageCState::C8 => &[(Sa, 0.10), (Io, 0.03)],
        };
        entries.iter().map(|&(d, w)| (d, Watts::new(w))).collect()
    }

    /// Total nominal power of the state.
    pub fn nominal_power(self) -> Watts {
        self.nominal_domain_powers().values().copied().sum()
    }

    /// Entry/exit latencies of the state transition flow. The C6 numbers
    /// are the ones FlexWatts's mode switch is built on (§6: 45 µs entry,
    /// 30 µs exit).
    pub fn latency(self) -> CStateLatency {
        let (entry_us, exit_us) = match self {
            PackageCState::C0Min => (0.0, 0.0),
            PackageCState::C2 => (2.0, 2.0),
            PackageCState::C3 => (10.0, 10.0),
            PackageCState::C6 => (45.0, 30.0),
            PackageCState::C7 => (60.0, 40.0),
            PackageCState::C8 => (100.0, 80.0),
        };
        CStateLatency { entry: Seconds::from_micros(entry_us), exit: Seconds::from_micros(exit_us) }
    }
}

impl fmt::Display for PackageCState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PackageCState::C0Min => "C0MIN",
            PackageCState::C2 => "C2",
            PackageCState::C3 => "C3",
            PackageCState::C6 => "C6",
            PackageCState::C7 => "C7",
            PackageCState::C8 => "C8",
        };
        f.write_str(s)
    }
}

/// Entry and exit latency of a package C-state transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CStateLatency {
    /// Time to enter the state (context save, clock/voltage ramp-down).
    pub entry: Seconds,
    /// Time to exit the state (voltage ramp-up, context restore).
    pub exit: Seconds,
}

impl CStateLatency {
    /// Total round-trip latency.
    pub fn round_trip(self) -> Seconds {
        self.entry + self.exit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_powers_match_paper_totals() {
        assert!((PackageCState::C0Min.nominal_power().get() - 2.5).abs() < 1e-9);
        assert!((PackageCState::C2.nominal_power().get() - 1.2).abs() < 1e-9);
        assert!((PackageCState::C8.nominal_power().get() - 0.13).abs() < 1e-9);
    }

    #[test]
    fn power_decreases_with_depth() {
        let mut prev = Watts::new(f64::INFINITY);
        for st in PackageCState::ALL {
            let p = st.nominal_power();
            assert!(p < prev, "{st} power {p} should be below previous {prev}");
            prev = p;
        }
    }

    #[test]
    fn only_c0min_powers_compute() {
        for st in PackageCState::ALL {
            let powers = st.nominal_domain_powers();
            let has_cores = powers.contains_key(&DomainKind::Core0);
            assert_eq!(has_cores, st.compute_powered(), "{st}");
            // SA (display path) stays powered in every modelled state.
            assert!(powers.contains_key(&DomainKind::Sa), "{st} must keep SA alive");
        }
    }

    #[test]
    fn c6_latency_matches_paper() {
        let lat = PackageCState::C6.latency();
        assert!((lat.entry.micros() - 45.0).abs() < 1e-9);
        assert!((lat.exit.micros() - 30.0).abs() < 1e-9);
        assert!((lat.round_trip().micros() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_with_depth() {
        let mut prev = -1.0;
        for st in PackageCState::ALL {
            let rt = st.latency().round_trip().micros();
            assert!(rt >= prev, "{st}");
            prev = rt;
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(PackageCState::C0Min.to_string(), "C0MIN");
        assert_eq!(PackageCState::C8.to_string(), "C8");
    }
}
