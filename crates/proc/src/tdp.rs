//! Thermal design power (TDP) and configurable TDP (cTDP).
//!
//! A client processor family spans a wide TDP range with one die design
//! (§1: Skylake scales from ~3 W tablets to 91 W desktops), and system
//! manufacturers can reconfigure a part's TDP at integration time or at
//! runtime (cTDP). This is one of the two reasons a single PDN must serve
//! every TDP — and therefore one of the motivations for FlexWatts.

use pdn_units::Watts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The TDP design points evaluated throughout the paper (Figs. 2 and 8).
pub const PAPER_TDPS: [f64; 7] = [4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0];

/// Error raised when selecting an unsupported cTDP level.
#[derive(Debug, Clone, PartialEq)]
pub struct UnsupportedTdpError {
    /// The requested TDP.
    pub requested: Watts,
}

impl fmt::Display for UnsupportedTdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "requested TDP {} is not a configured cTDP level", self.requested)
    }
}

impl std::error::Error for UnsupportedTdpError {}

/// A configurable-TDP (cTDP) setting: the supported levels and the
/// currently selected one.
///
/// # Examples
///
/// ```
/// use pdn_proc::ConfigurableTdp;
/// use pdn_units::Watts;
///
/// let mut ctdp = ConfigurableTdp::new(vec![
///     Watts::new(10.0),
///     Watts::new(18.0),
///     Watts::new(25.0),
/// ], 1)?;
/// assert_eq!(ctdp.current(), Watts::new(18.0));
/// ctdp.configure(Watts::new(25.0))?;
/// assert_eq!(ctdp.current(), Watts::new(25.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurableTdp {
    levels: Vec<Watts>,
    current: usize,
}

impl ConfigurableTdp {
    /// Creates a cTDP configuration from sorted supported levels and the
    /// index of the initially selected level.
    ///
    /// # Errors
    ///
    /// Returns an error if `levels` is empty, unsorted, or `initial` is out
    /// of bounds.
    pub fn new(levels: Vec<Watts>, initial: usize) -> Result<Self, UnsupportedTdpError> {
        if levels.is_empty() || initial >= levels.len() || levels.windows(2).any(|w| w[0] >= w[1]) {
            return Err(UnsupportedTdpError {
                requested: levels.get(initial).copied().unwrap_or(Watts::ZERO),
            });
        }
        Ok(Self { levels, current: initial })
    }

    /// A fixed (non-configurable) TDP.
    pub fn fixed(tdp: Watts) -> Self {
        Self { levels: vec![tdp], current: 0 }
    }

    /// The currently configured TDP.
    pub fn current(&self) -> Watts {
        self.levels[self.current]
    }

    /// The supported levels, ascending.
    pub fn levels(&self) -> &[Watts] {
        &self.levels
    }

    /// Selects a supported level (cTDP-up / cTDP-down).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedTdpError`] if `tdp` is not a configured level.
    pub fn configure(&mut self, tdp: Watts) -> Result<(), UnsupportedTdpError> {
        match self.levels.iter().position(|&l| (l.get() - tdp.get()).abs() < 1e-9) {
            Some(i) => {
                self.current = i;
                Ok(())
            }
            None => Err(UnsupportedTdpError { requested: tdp }),
        }
    }

    /// Steps to the next-higher level if one exists (cTDP-up); returns the
    /// new current TDP.
    pub fn step_up(&mut self) -> Watts {
        if self.current + 1 < self.levels.len() {
            self.current += 1;
        }
        self.current()
    }

    /// Steps to the next-lower level if one exists (cTDP-down); returns the
    /// new current TDP.
    pub fn step_down(&mut self) -> Watts {
        self.current = self.current.saturating_sub(1);
        self.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn levels() -> Vec<Watts> {
        PAPER_TDPS.iter().map(|&w| Watts::new(w)).collect()
    }

    #[test]
    fn paper_tdps_are_sorted_and_span_4_to_50() {
        assert_eq!(PAPER_TDPS[0], 4.0);
        assert_eq!(PAPER_TDPS[PAPER_TDPS.len() - 1], 50.0);
        assert!(PAPER_TDPS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn configure_and_step() {
        let mut c = ConfigurableTdp::new(levels(), 0).unwrap();
        assert_eq!(c.current(), Watts::new(4.0));
        assert_eq!(c.step_up(), Watts::new(8.0));
        assert_eq!(c.step_down(), Watts::new(4.0));
        assert_eq!(c.step_down(), Watts::new(4.0), "saturates at the bottom");
        c.configure(Watts::new(36.0)).unwrap();
        assert_eq!(c.current(), Watts::new(36.0));
        assert!(c.configure(Watts::new(12.0)).is_err());
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(ConfigurableTdp::new(vec![], 0).is_err());
        assert!(ConfigurableTdp::new(levels(), 99).is_err());
        assert!(ConfigurableTdp::new(vec![Watts::new(10.0), Watts::new(10.0)], 0).is_err());
    }

    #[test]
    fn fixed_has_single_level() {
        let c = ConfigurableTdp::fixed(Watts::new(15.0));
        assert_eq!(c.levels().len(), 1);
        assert_eq!(c.current(), Watts::new(15.0));
    }
}
