//! SoC specifications: the processor configurations of Tables 1 and 3.
//!
//! [`client_soc`] builds the paper's modelled client processor (two CPU
//! cores, LLC, graphics, SA, IO — Table 1) at a given TDP design point.
//! Domain power models are calibrated so the nominal power ranges match
//! Table 2: cores 0.6–30 W, LLC 0.5–4 W, graphics 0.58–29.4 W across the
//! 4–50 W TDP range, with SA+IO nearly constant (Fig. 2b).

use crate::domain::{DomainKind, DomainState, DomainTable};
use crate::power::{DomainPowerModel, DEFAULT_CLOCK_FRACTION, LEAKAGE_VOLTAGE_EXPONENT};
use crate::vf::VfCurve;
use pdn_units::{Celsius, Hertz, Ratio, Volts, Watts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Junction temperature used for battery-life evaluations (§7.1).
pub const TJ_BATTERY_LIFE: Celsius = Celsius::new(50.0);

/// Static configuration of one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainConfig {
    /// The power model.
    pub power: DomainPowerModel,
    /// The voltage/frequency curve.
    pub vf: VfCurve,
    /// Minimum operating frequency.
    pub fmin: Hertz,
    /// Maximum (architectural) operating frequency.
    pub fmax: Hertz,
}

impl DomainConfig {
    /// Nominal power of the domain in a given runtime state at junction
    /// temperature `tj`. Power-gated domains consume nothing.
    pub fn nominal_power(&self, state: &DomainState, tj: Celsius) -> Watts {
        if !state.powered {
            return Watts::ZERO;
        }
        let f = state.frequency.clamp(self.fmin, self.fmax);
        let v = self.vf.voltage_at(f);
        self.power.nominal_power(f, v, state.activity, tj)
    }

    /// Rail voltage required for a runtime state.
    pub fn voltage_for(&self, state: &DomainState) -> Volts {
        self.vf.voltage_at(state.frequency.clamp(self.fmin, self.fmax))
    }

    /// Hoists the activity-independent half of [`DomainConfig::nominal_power`]
    /// at a fixed frequency and temperature: the frequency clamp, the V/f
    /// interpolation and the leakage `powf`/`exp` are computed once, and
    /// [`HoistedDomainPower::nominal_at`] reproduces `nominal_power` for any
    /// activity bit-for-bit. Row-at-a-time lattice evaluation builds one of
    /// these per (row, domain) and sweeps activity over the row.
    pub fn hoist_active(&self, frequency: Hertz, tj: Celsius) -> HoistedDomainPower {
        let f = frequency.clamp(self.fmin, self.fmax);
        let v = self.vf.voltage_at(f);
        HoistedDomainPower {
            frequency: f,
            voltage: v,
            leakage: self.power.leakage_power(v, tj),
            ceff: self.power.ceff,
            clock_fraction: self.power.clock_fraction,
            leakage_fraction: self.power.guardband_leakage_fraction,
        }
    }
}

/// The activity-independent half of a powered domain's operating point:
/// clamped frequency, interpolated rail voltage, and the (expensive)
/// leakage power, computed once per lattice row by
/// [`DomainConfig::hoist_active`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoistedDomainPower {
    frequency: Hertz,
    voltage: Volts,
    leakage: Watts,
    ceff: f64,
    clock_fraction: f64,
    leakage_fraction: Ratio,
}

impl HoistedDomainPower {
    /// The rail voltage at the hoisted operating point — the value
    /// [`DomainConfig::voltage_for`] would return for the same frequency.
    pub fn voltage(&self) -> Volts {
        self.voltage
    }

    /// The design-time guardband leakage fraction of the domain.
    pub fn leakage_fraction(&self) -> Ratio {
        self.leakage_fraction
    }

    /// Nominal power at `activity` — bit-identical to
    /// [`DomainConfig::nominal_power`] on an active state at the hoisted
    /// frequency: the dynamic share repeats the exact
    /// [`DomainPowerModel::dynamic_power`] expression (left-to-right
    /// multiply order matters) and adds the precomputed leakage term.
    pub fn nominal_at(&self, activity: pdn_units::ApplicationRatio) -> Watts {
        let effective = self.clock_fraction + (1.0 - self.clock_fraction) * activity.get();
        Watts::new(
            effective * self.ceff * self.frequency.get() * self.voltage.get() * self.voltage.get(),
        ) + self.leakage
    }
}

/// A complete SoC specification (Table 1 architecture at one TDP point).
///
/// # Examples
///
/// ```
/// use pdn_proc::{client_soc, DomainKind, DomainState};
/// use pdn_units::{ApplicationRatio, Hertz, Watts};
///
/// let soc = client_soc(Watts::new(50.0));
/// let state = DomainState::active(
///     Hertz::from_gigahertz(4.0),
///     ApplicationRatio::POWER_VIRUS,
/// );
/// let both_cores = soc.domain(DomainKind::Core0).nominal_power(&state, soc.tj_active)
///     + soc.domain(DomainKind::Core1).nominal_power(&state, soc.tj_active);
/// assert!(both_cores.get() > 20.0 && both_cores.get() < 40.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocSpec {
    /// Human-readable name.
    pub name: String,
    /// Thermal design power of this configuration.
    pub tdp: Watts,
    /// Junction temperature assumed for active (performance) workloads.
    /// §7.1: 80 °C for fan-less 4–8 W parts, 100 °C above.
    pub tj_active: Celsius,
    /// Process node, for reporting (both Table 3 systems are 14 nm).
    pub process_node_nm: u32,
    domains: DomainTable<DomainConfig>,
}

impl SocSpec {
    /// Returns the configuration of a domain.
    pub fn domain(&self, kind: DomainKind) -> &DomainConfig {
        self.domains.get(kind)
    }

    /// Iterates over `(kind, config)` pairs in canonical order.
    pub fn domains(&self) -> impl Iterator<Item = (DomainKind, &DomainConfig)> {
        self.domains.iter()
    }

    /// Total nominal power over a full set of domain states.
    pub fn total_nominal_power(
        &self,
        states: &BTreeMap<DomainKind, DomainState>,
        tj: Celsius,
    ) -> Watts {
        states.iter().map(|(kind, state)| self.domain(*kind).nominal_power(state, tj)).sum()
    }

    /// The fixed operating point of the SA and IO domains (Table 1: fixed
    /// frequencies, not scaled with load) at a given activity.
    pub fn sa_io_states(
        &self,
        activity: pdn_units::ApplicationRatio,
    ) -> BTreeMap<DomainKind, DomainState> {
        DomainKind::NARROW_RANGE
            .iter()
            .map(|&k| {
                let cfg = self.domain(k);
                (k, DomainState::active(cfg.fmax, activity))
            })
            .collect()
    }
}

/// Builder for the paper's client SoC at a chosen TDP design point.
///
/// # Examples
///
/// ```
/// use pdn_proc::ClientSocBuilder;
/// use pdn_units::{Celsius, Watts};
///
/// let soc = ClientSocBuilder::new(Watts::new(18.0))
///     .name("custom-18W")
///     .junction_temperature(Celsius::new(90.0))
///     .build();
/// assert_eq!(soc.tdp, Watts::new(18.0));
/// assert_eq!(soc.tj_active, Celsius::new(90.0));
/// ```
#[derive(Debug, Clone)]
pub struct ClientSocBuilder {
    tdp: Watts,
    name: Option<String>,
    tj_active: Option<Celsius>,
    leakage_scale: f64,
}

impl ClientSocBuilder {
    /// Starts a builder for a SoC with the given TDP.
    pub fn new(tdp: Watts) -> Self {
        Self { tdp, name: None, tj_active: None, leakage_scale: 1.0 }
    }

    /// Overrides the SoC name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Overrides the active junction temperature (default: the paper's
    /// fan-less assumption — 80 °C for TDP ≤ 8 W, 100 °C above).
    pub fn junction_temperature(mut self, tj: Celsius) -> Self {
        self.tj_active = Some(tj);
        self
    }

    /// Scales all leakage reference powers (process-bin modelling, used by
    /// the validation reference system's per-unit variation).
    pub fn leakage_scale(mut self, scale: f64) -> Self {
        self.leakage_scale = scale;
        self
    }

    /// Builds the SoC specification.
    pub fn build(self) -> SocSpec {
        let tdp = self.tdp;
        let tj_active = self.tj_active.unwrap_or(if tdp.get() <= 8.0 {
            Celsius::new(80.0)
        } else {
            Celsius::new(100.0)
        });
        let ratio = |v: f64| Ratio::new(v).expect("static fractions are valid");
        let ls = self.leakage_scale;
        // SA/IO power grows mildly with the design point (bigger display
        // pipes, more IO lanes) but stays narrow — Fig. 2b.
        let sa_io_scale = 1.0 + 0.4 * ((tdp.get() - 4.0) / 46.0).clamp(0.0, 1.0);

        let core = |kind: DomainKind| DomainConfig {
            power: DomainPowerModel {
                kind,
                ceff: 4.05e-9,
                leak_ref: Watts::new(1.65 * ls),
                vref: Volts::new(0.85),
                tref: Celsius::new(100.0),
                leak_voltage_exp: LEAKAGE_VOLTAGE_EXPONENT,
                leak_temp_coeff: 0.02,
                guardband_leakage_fraction: ratio(0.22),
                clock_fraction: DEFAULT_CLOCK_FRACTION,
            },
            vf: VfCurve::client_core(),
            fmin: Hertz::from_gigahertz(0.8),
            fmax: Hertz::from_gigahertz(4.0),
        };

        let llc = DomainConfig {
            power: DomainPowerModel {
                kind: DomainKind::Llc,
                ceff: 1.11e-9,
                leak_ref: Watts::new(0.80 * ls),
                vref: Volts::new(0.85),
                tref: Celsius::new(100.0),
                leak_voltage_exp: LEAKAGE_VOLTAGE_EXPONENT,
                leak_temp_coeff: 0.02,
                guardband_leakage_fraction: ratio(0.22),
                clock_fraction: DEFAULT_CLOCK_FRACTION,
            },
            vf: VfCurve::client_llc(),
            fmin: Hertz::from_gigahertz(0.8),
            fmax: Hertz::from_gigahertz(4.0),
        };
        let gfx = DomainConfig {
            power: DomainPowerModel {
                kind: DomainKind::Gfx,
                ceff: 20.0e-9,
                leak_ref: Watts::new(13.2 * ls),
                vref: Volts::new(0.82),
                tref: Celsius::new(100.0),
                // Graphics slices power-gate aggressively at low load,
                // which shows up as a steeper leakage-vs-voltage slope
                // than the monolithic core domain.
                leak_voltage_exp: 5.0,
                leak_temp_coeff: 0.02,
                guardband_leakage_fraction: ratio(0.45),
                clock_fraction: 0.40,
            },
            vf: VfCurve::client_gfx(),
            fmin: Hertz::from_gigahertz(0.1),
            fmax: Hertz::from_gigahertz(1.2),
        };
        let sa = DomainConfig {
            power: DomainPowerModel {
                kind: DomainKind::Sa,
                ceff: 2.0e-9 * sa_io_scale,
                leak_ref: Watts::new(0.30 * ls),
                vref: Volts::new(0.85),
                tref: Celsius::new(100.0),
                leak_voltage_exp: LEAKAGE_VOLTAGE_EXPONENT,
                leak_temp_coeff: 0.02,
                guardband_leakage_fraction: ratio(0.22),
                clock_fraction: DEFAULT_CLOCK_FRACTION,
            },
            vf: VfCurve::fixed(Volts::new(0.85)),
            fmin: Hertz::from_gigahertz(0.8),
            fmax: Hertz::from_gigahertz(0.8),
        };
        let io = DomainConfig {
            power: DomainPowerModel {
                kind: DomainKind::Io,
                ceff: 0.80e-9 * sa_io_scale,
                leak_ref: Watts::new(0.12 * ls),
                vref: Volts::new(1.10),
                tref: Celsius::new(100.0),
                leak_voltage_exp: LEAKAGE_VOLTAGE_EXPONENT,
                leak_temp_coeff: 0.02,
                guardband_leakage_fraction: ratio(0.22),
                clock_fraction: DEFAULT_CLOCK_FRACTION,
            },
            vf: VfCurve::fixed(Volts::new(1.10)),
            fmin: Hertz::from_gigahertz(0.4),
            fmax: Hertz::from_gigahertz(0.4),
        };
        // Canonical `DomainKind::ALL` order.
        let domains =
            DomainTable::new([core(DomainKind::Core0), core(DomainKind::Core1), llc, gfx, sa, io]);

        SocSpec {
            name: self.name.unwrap_or_else(|| format!("client-soc-{}W", tdp.get())),
            tdp,
            tj_active,
            process_node_nm: 14,
            domains,
        }
    }
}

/// The paper's modelled client SoC (Table 1) at a TDP design point.
pub fn client_soc(tdp: Watts) -> SocSpec {
    ClientSocBuilder::new(tdp).build()
}

/// The Skylake validation system of Table 3 (Intel Core i7-6600U, 15 W,
/// MBVR PDN).
pub fn skylake_ult() -> SocSpec {
    ClientSocBuilder::new(Watts::new(15.0)).name("i7-6600U (Skylake, MBVR)").build()
}

/// The Broadwell validation system of Table 3 (Intel Core i7-5600U, 15 W,
/// IVR PDN).
pub fn broadwell_ult() -> SocSpec {
    ClientSocBuilder::new(Watts::new(15.0)).name("i7-5600U (Broadwell, IVR)").build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdn_units::ApplicationRatio;

    #[test]
    fn junction_temperature_follows_fanless_rule() {
        assert_eq!(client_soc(Watts::new(4.0)).tj_active, Celsius::new(80.0));
        assert_eq!(client_soc(Watts::new(8.0)).tj_active, Celsius::new(80.0));
        assert_eq!(client_soc(Watts::new(10.0)).tj_active, Celsius::new(100.0));
        assert_eq!(client_soc(Watts::new(50.0)).tj_active, Celsius::new(100.0));
    }

    #[test]
    fn cores_span_table2_power_range() {
        let soc = client_soc(Watts::new(50.0));
        let tj = soc.tj_active;
        let cores = soc.domain(DomainKind::Core0);
        let max_state =
            DomainState::active(Hertz::from_gigahertz(4.0), ApplicationRatio::POWER_VIRUS);
        let both_max = cores.nominal_power(&max_state, tj) * 2.0;
        assert!(
            both_max.get() > 24.0 && both_max.get() < 36.0,
            "two cores at fmax should be ≈ 30 W, got {both_max}"
        );

        let soc4 = client_soc(Watts::new(4.0));
        let min_state =
            DomainState::active(Hertz::from_gigahertz(0.8), ApplicationRatio::new(0.5).unwrap());
        let both_min =
            soc4.domain(DomainKind::Core0).nominal_power(&min_state, soc4.tj_active) * 2.0;
        assert!(
            both_min.get() > 0.4 && both_min.get() < 1.6,
            "two cores at fmin should be ≈ 0.6–1.5 W, got {both_min}"
        );
    }

    #[test]
    fn gfx_spans_table2_power_range() {
        let soc = client_soc(Watts::new(50.0));
        let max_state =
            DomainState::active(Hertz::from_gigahertz(1.2), ApplicationRatio::POWER_VIRUS);
        let p = soc.domain(DomainKind::Gfx).nominal_power(&max_state, soc.tj_active);
        assert!(p.get() > 24.0 && p.get() < 34.0, "GFX at fmax should be ≈ 29.4 W, got {p}");
    }

    #[test]
    fn llc_spans_table2_power_range() {
        let soc = client_soc(Watts::new(50.0));
        let max_state =
            DomainState::active(Hertz::from_gigahertz(4.0), ApplicationRatio::POWER_VIRUS);
        let p = soc.domain(DomainKind::Llc).nominal_power(&max_state, soc.tj_active);
        assert!(p.get() > 3.0 && p.get() < 5.0, "LLC at fmax should be ≈ 4 W, got {p}");
    }

    #[test]
    fn sa_io_power_is_low_and_narrow() {
        let ar = ApplicationRatio::new(0.6).unwrap();
        let lo = client_soc(Watts::new(4.0));
        let hi = client_soc(Watts::new(50.0));
        let total = |soc: &SocSpec| soc.total_nominal_power(&soc.sa_io_states(ar), soc.tj_active);
        let p_lo = total(&lo);
        let p_hi = total(&hi);
        assert!(p_lo.get() > 0.8 && p_lo.get() < 2.0, "SA+IO at 4 W: {p_lo}");
        assert!(p_hi.get() > p_lo.get() && p_hi.get() < 3.0, "SA+IO at 50 W: {p_hi}");
        // "Nearly constant": the ratio across the full TDP range stays small.
        assert!(p_hi.get() / p_lo.get() < 2.0);
    }

    #[test]
    fn gated_domains_consume_nothing() {
        let soc = client_soc(Watts::new(18.0));
        let p = soc.domain(DomainKind::Gfx).nominal_power(&DomainState::gated(), soc.tj_active);
        assert_eq!(p, Watts::ZERO);
    }

    #[test]
    fn table3_presets_are_15w_14nm() {
        for soc in [skylake_ult(), broadwell_ult()] {
            assert_eq!(soc.tdp, Watts::new(15.0));
            assert_eq!(soc.process_node_nm, 14);
        }
        assert!(skylake_ult().name.contains("Skylake"));
        assert!(broadwell_ult().name.contains("Broadwell"));
    }

    #[test]
    fn builder_overrides_apply() {
        let soc = ClientSocBuilder::new(Watts::new(10.0)).leakage_scale(1.2).name("binned").build();
        let base = client_soc(Watts::new(10.0));
        let v = Volts::new(1.0);
        let t = Celsius::new(100.0);
        let leak_scaled = soc.domain(DomainKind::Core0).power.leakage_power(v, t);
        let leak_base = base.domain(DomainKind::Core0).power.leakage_power(v, t);
        assert!((leak_scaled.get() / leak_base.get() - 1.2).abs() < 1e-9);
        assert_eq!(soc.name, "binned");
    }

    #[test]
    fn domain_voltage_follows_vf_curve() {
        let soc = client_soc(Watts::new(18.0));
        let cores = soc.domain(DomainKind::Core0);
        let slow = DomainState::active(Hertz::from_gigahertz(0.9), ApplicationRatio::POWER_VIRUS);
        let fast = DomainState::active(Hertz::from_gigahertz(3.8), ApplicationRatio::POWER_VIRUS);
        assert!(cores.voltage_for(&slow) < cores.voltage_for(&fast));
    }
}
