//! Voltage/frequency curves.
//!
//! A domain's minimum stable voltage rises with clock frequency. The PMU
//! stores this relationship as a firmware table (footnote 11 of the paper);
//! we model it as a piecewise-linear curve over frequency.

use pdn_units::{Curve1, Hertz, UnitsError, Volts};
use serde::{Deserialize, Serialize};

/// A voltage/frequency curve for one domain.
///
/// # Examples
///
/// ```
/// use pdn_proc::VfCurve;
/// use pdn_units::Hertz;
///
/// let vf = VfCurve::client_core();
/// let v_low = vf.voltage_at(Hertz::from_gigahertz(0.9));
/// let v_high = vf.voltage_at(Hertz::from_gigahertz(4.0));
/// assert!(v_low < v_high);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    curve: Curve1,
}

impl VfCurve {
    /// Builds a V/f curve from `(frequency, voltage)` knots.
    ///
    /// # Errors
    ///
    /// Returns an error if the knots do not form a valid strictly
    /// increasing-frequency curve.
    pub fn from_points<I>(points: I) -> Result<Self, UnitsError>
    where
        I: IntoIterator<Item = (Hertz, Volts)>,
    {
        let curve = Curve1::from_points(points.into_iter().map(|(f, v)| (f.get(), v.get())))?;
        Ok(Self { curve })
    }

    /// Minimum stable voltage at `frequency` (clamped to the curve domain).
    pub fn voltage_at(&self, frequency: Hertz) -> Volts {
        Volts::new(self.curve.eval(frequency.get()))
    }

    /// Iterates over the `(frequency, voltage)` knots of the curve, in
    /// ascending frequency order. Exposes the exact table a PMU would
    /// store, e.g. for content-addressed caching of solver results.
    pub fn points(&self) -> impl Iterator<Item = (Hertz, Volts)> + '_ {
        self.curve.points().map(|(f, v)| (Hertz::new(f), Volts::new(v)))
    }

    /// The frequency range covered by the curve.
    pub fn frequency_range(&self) -> (Hertz, Hertz) {
        let (lo, hi) = self.curve.domain();
        (Hertz::new(lo), Hertz::new(hi))
    }

    /// The voltage range covered by the curve.
    pub fn voltage_range(&self) -> (Volts, Volts) {
        (Volts::new(self.curve.y_min()), Volts::new(self.curve.y_max()))
    }

    /// The client CPU-core curve: a Vmin plateau (0.40 V) up to 2.2 GHz,
    /// then rising to 0.85 V at 4 GHz with the characteristic super-linear
    /// knee. The plateau is what makes low-TDP frequency increases cheap
    /// (Fig. 2a: ≈ 9 mW per 1 % at 4 W). The levels are load-side voltages
    /// (after load-line droop), matching the §2.1 "typically 0.5–1.1 V"
    /// range once guardbands are added.
    pub fn client_core() -> Self {
        Self::from_points([
            (Hertz::from_gigahertz(0.8), Volts::new(0.400)),
            (Hertz::from_gigahertz(2.2), Volts::new(0.410)),
            (Hertz::from_gigahertz(2.8), Volts::new(0.52)),
            (Hertz::from_gigahertz(3.4), Volts::new(0.68)),
            (Hertz::from_gigahertz(4.0), Volts::new(0.85)),
        ])
        .expect("static curve is valid")
    }

    /// The client graphics curve: 0.1 GHz at 0.40 V up to 1.2 GHz at 0.82 V
    /// (Table 1's GFX frequency range). §5 Observation 2's point stands:
    /// graphics runs near the top of its range while cores sit near 0.5 V
    /// during graphics workloads.
    pub fn client_gfx() -> Self {
        Self::from_points([
            (Hertz::from_gigahertz(0.1), Volts::new(0.400)),
            (Hertz::from_gigahertz(0.45), Volts::new(0.405)),
            (Hertz::from_gigahertz(0.7), Volts::new(0.52)),
            (Hertz::from_gigahertz(0.95), Volts::new(0.66)),
            (Hertz::from_gigahertz(1.2), Volts::new(0.82)),
        ])
        .expect("static curve is valid")
    }

    /// The LLC curve. The LLC voltage design point matches the core voltage
    /// domain (§7.1, Rotem et al.); the curve is the core curve over the
    /// core frequency range.
    pub fn client_llc() -> Self {
        Self::client_core()
    }

    /// Fixed-frequency SA/IO rail: flat voltage across its (nominal)
    /// operating range.
    pub fn fixed(voltage: Volts) -> Self {
        Self::from_points([
            (Hertz::from_gigahertz(0.05), voltage),
            (Hertz::from_gigahertz(2.0), voltage),
        ])
        .expect("static curve is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_curve_is_monotone() {
        let vf = VfCurve::client_core();
        let mut prev = Volts::ZERO;
        for ghz in [0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
            let v = vf.voltage_at(Hertz::from_gigahertz(ghz));
            assert!(v >= prev, "V/f must be non-decreasing");
            prev = v;
        }
    }

    #[test]
    fn core_curve_matches_table1_range() {
        let vf = VfCurve::client_core();
        let (flo, fhi) = vf.frequency_range();
        assert!((flo.gigahertz() - 0.8).abs() < 1e-9);
        assert!((fhi.gigahertz() - 4.0).abs() < 1e-9);
        let (vlo, vhi) = vf.voltage_range();
        assert!(vlo.get() >= 0.4 && vhi.get() <= 1.2);
    }

    #[test]
    fn gfx_curve_matches_table1_range() {
        let vf = VfCurve::client_gfx();
        let (flo, fhi) = vf.frequency_range();
        assert!((flo.gigahertz() - 0.1).abs() < 1e-9);
        assert!((fhi.gigahertz() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn clamping_outside_range() {
        let vf = VfCurve::client_core();
        assert_eq!(vf.voltage_at(Hertz::from_gigahertz(0.1)), Volts::new(0.40));
        assert_eq!(vf.voltage_at(Hertz::from_gigahertz(9.0)), Volts::new(0.85));
    }

    #[test]
    fn fixed_rail_is_flat() {
        let vf = VfCurve::fixed(Volts::new(0.85));
        assert_eq!(vf.voltage_at(Hertz::from_megahertz(100.0)), Volts::new(0.85));
        assert_eq!(vf.voltage_at(Hertz::from_gigahertz(1.5)), Volts::new(0.85));
    }
}
