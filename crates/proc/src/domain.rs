//! Processor power domains (Table 1 of the paper).

use pdn_units::{ApplicationRatio, Hertz};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six power domains of the modelled client processor (Table 1).
///
/// The two CPU cores share one clock domain but have separate rails in the
/// IVR and LDO PDNs (Fig. 1), so they are modelled as distinct domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainKind {
    /// CPU core 0 (0.8–4 GHz clock domain shared with core 1).
    Core0,
    /// CPU core 1.
    Core1,
    /// Last-level cache; sized/clocked proportionally to cores and graphics.
    Llc,
    /// Graphics engines (0.1–1.2 GHz).
    Gfx,
    /// System agent: memory controller, display controller, IO fabric.
    Sa,
    /// Processor IOs (DDR IO, display IO) at fixed frequencies.
    Io,
}

impl DomainKind {
    /// Number of domains (the length of [`Self::ALL`]).
    pub const COUNT: usize = 6;

    /// All domains in canonical order.
    pub const ALL: [DomainKind; Self::COUNT] = [
        DomainKind::Core0,
        DomainKind::Core1,
        DomainKind::Llc,
        DomainKind::Gfx,
        DomainKind::Sa,
        DomainKind::Io,
    ];

    /// The domain's dense index: its position in [`Self::ALL`], which is
    /// also its enum discriminant and its `Ord` rank.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Domains with a wide power-consumption range (CPU cores, LLC,
    /// graphics). FlexWatts allocates its hybrid PDN to exactly these
    /// domains (§6).
    pub const WIDE_RANGE: [DomainKind; 4] =
        [DomainKind::Core0, DomainKind::Core1, DomainKind::Llc, DomainKind::Gfx];

    /// Domains with a low, narrow power range (SA, IO). FlexWatts and the
    /// LDO PDN statically put these on dedicated off-chip VRs.
    pub const NARROW_RANGE: [DomainKind; 2] = [DomainKind::Sa, DomainKind::Io];

    /// Whether the domain belongs to the compute group whose frequency the
    /// power-budget manager scales with the available budget.
    pub fn is_compute(self) -> bool {
        matches!(self, DomainKind::Core0 | DomainKind::Core1 | DomainKind::Gfx)
    }

    /// Whether the domain has a wide power range (hybrid-PDN candidates).
    pub fn is_wide_range(self) -> bool {
        Self::WIDE_RANGE.contains(&self)
    }

    /// Whether the domain runs at fixed frequency regardless of load
    /// (Table 1: SA and IO operate at fixed frequencies).
    pub fn is_fixed_frequency(self) -> bool {
        matches!(self, DomainKind::Sa | DomainKind::Io)
    }

    /// Short rail-style name used in reports (matches Fig. 1 labels).
    pub fn rail_name(self) -> &'static str {
        match self {
            DomainKind::Core0 => "Core0",
            DomainKind::Core1 => "Core1",
            DomainKind::Llc => "LLC",
            DomainKind::Gfx => "GFX",
            DomainKind::Sa => "SA",
            DomainKind::Io => "IO",
        }
    }
}

impl fmt::Display for DomainKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.rail_name())
    }
}

/// A dense map from [`DomainKind`] to `T`, stored as a fixed-size array
/// indexed by [`DomainKind::index`].
///
/// This is the hot-path replacement for `BTreeMap<DomainKind, T>`:
/// lookups are a bounds-check-free array index instead of a tree walk,
/// the whole table lives inline (no heap allocation per instance), and
/// iteration follows [`DomainKind::ALL`] — the same order a `BTreeMap`
/// yields, since `DomainKind`'s derived `Ord` follows declaration order.
/// Floating-point reductions over a table are therefore bit-identical to
/// the same reductions over the map it replaces.
///
/// # Examples
///
/// ```
/// use pdn_proc::{DomainKind, DomainTable};
///
/// let mut powered = DomainTable::filled(false);
/// powered.set(DomainKind::Core0, true);
/// assert!(*powered.get(DomainKind::Core0));
/// assert_eq!(powered.values().filter(|&&p| p).count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainTable<T> {
    slots: [T; DomainKind::COUNT],
}

impl<T> DomainTable<T> {
    /// Builds a table from per-domain slots given in canonical
    /// ([`DomainKind::ALL`]) order.
    pub const fn new(slots: [T; DomainKind::COUNT]) -> Self {
        Self { slots }
    }

    /// Builds a table by evaluating `f` once per domain, in canonical
    /// order.
    pub fn from_fn(f: impl FnMut(DomainKind) -> T) -> Self {
        Self { slots: DomainKind::ALL.map(f) }
    }

    /// The value stored for a domain.
    pub fn get(&self, kind: DomainKind) -> &T {
        &self.slots[kind.index()]
    }

    /// Mutable access to the value stored for a domain.
    pub fn get_mut(&mut self, kind: DomainKind) -> &mut T {
        &mut self.slots[kind.index()]
    }

    /// Replaces the value stored for a domain.
    pub fn set(&mut self, kind: DomainKind, value: T) {
        self.slots[kind.index()] = value;
    }

    /// Iterates `(kind, value)` pairs in canonical domain order.
    pub fn iter(&self) -> impl Iterator<Item = (DomainKind, &T)> {
        DomainKind::ALL.into_iter().zip(self.slots.iter())
    }

    /// Iterates the values in canonical domain order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter()
    }
}

impl<T: Copy> DomainTable<T> {
    /// A table with every slot set to `fill`.
    pub const fn filled(fill: T) -> Self {
        Self { slots: [fill; DomainKind::COUNT] }
    }
}

impl<T> std::ops::Index<DomainKind> for DomainTable<T> {
    type Output = T;

    fn index(&self, kind: DomainKind) -> &T {
        self.get(kind)
    }
}

impl<T> std::ops::IndexMut<DomainKind> for DomainTable<T> {
    fn index_mut(&mut self, kind: DomainKind) -> &mut T {
        self.get_mut(kind)
    }
}

/// Runtime state of one domain: clock, activity, and whether it is powered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainState {
    /// Operating clock frequency (ignored when `powered` is false).
    pub frequency: Hertz,
    /// Activity factor relative to the domain's power virus (AR, §2.4).
    pub activity: ApplicationRatio,
    /// Whether the domain is powered (false = power-gated / idle).
    pub powered: bool,
}

impl DomainState {
    /// An active domain at `frequency` with activity `activity`.
    pub fn active(frequency: Hertz, activity: ApplicationRatio) -> Self {
        Self { frequency, activity, powered: true }
    }

    /// A power-gated (idle) domain.
    pub fn gated() -> Self {
        Self { frequency: Hertz::ZERO, activity: ApplicationRatio::POWER_VIRUS, powered: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_domains() {
        let mut all: Vec<DomainKind> = DomainKind::WIDE_RANGE.to_vec();
        all.extend(DomainKind::NARROW_RANGE);
        all.sort();
        let mut expected = DomainKind::ALL.to_vec();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn compute_vs_fixed_frequency() {
        assert!(DomainKind::Core0.is_compute());
        assert!(DomainKind::Gfx.is_compute());
        assert!(!DomainKind::Llc.is_compute());
        assert!(DomainKind::Sa.is_fixed_frequency());
        assert!(!DomainKind::Core1.is_fixed_frequency());
    }

    #[test]
    fn display_matches_fig1_labels() {
        assert_eq!(DomainKind::Gfx.to_string(), "GFX");
        assert_eq!(DomainKind::Llc.to_string(), "LLC");
    }

    #[test]
    fn gated_state_is_unpowered() {
        let s = DomainState::gated();
        assert!(!s.powered);
        assert_eq!(s.frequency, Hertz::ZERO);
    }

    #[test]
    fn index_matches_position_in_all() {
        for (i, k) in DomainKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn table_iteration_matches_btreemap_order() {
        use std::collections::BTreeMap;
        let table = DomainTable::from_fn(|k| k.index() * 10);
        let map: BTreeMap<_, _> =
            DomainKind::ALL.into_iter().map(|k| (k, k.index() * 10)).collect();
        let from_table: Vec<_> = table.iter().map(|(k, &v)| (k, v)).collect();
        let from_map: Vec<_> = map.into_iter().collect();
        assert_eq!(from_table, from_map);
    }

    #[test]
    fn table_get_set_and_index() {
        let mut t = DomainTable::filled(0_u32);
        t.set(DomainKind::Gfx, 7);
        t[DomainKind::Io] = 9;
        assert_eq!(*t.get(DomainKind::Gfx), 7);
        assert_eq!(t[DomainKind::Io], 9);
        assert_eq!(t.values().sum::<u32>(), 16);
    }
}
