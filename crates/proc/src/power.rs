//! Domain power model: dynamic + leakage power and the Eq. 2 voltage
//! guardband.
//!
//! Dynamic power follows the classic `AR · Ceff · f · V²` switching model.
//! Leakage scales polynomially with voltage (exponent δ ≈ 2.8, fitted on an
//! Intel Core i7-6600U in §3.1 of the paper) and exponentially with
//! temperature (the post-silicon thermal-conditioning technique of §4.2
//! exploits exactly this dependence to extract the leakage fraction).

use crate::domain::DomainKind;
use pdn_units::{ApplicationRatio, Celsius, Hertz, Ratio, Volts, Watts};
use serde::{Deserialize, Serialize};

/// The paper's fitted leakage-vs-voltage exponent (δ ≈ 2.8, §3.1).
pub const LEAKAGE_VOLTAGE_EXPONENT: f64 = 2.8;

/// Guardband power scaling, Eq. 2 of the paper:
///
/// `P_GB = P_NOM · [ FL·((V_NOM+V_GB)/V_NOM)^δ + (1−FL)·((V_NOM+V_GB)/V_NOM)² ]`
///
/// The dynamic share scales with voltage squared while the leakage share
/// scales with voltage to the power δ.
///
/// # Examples
///
/// ```
/// use pdn_proc::guardband_power;
/// use pdn_units::{Ratio, Volts, Watts};
///
/// // A 20 mV tolerance band on a 0.8 V rail costs ≈ 5–6 % extra power.
/// let pgb = guardband_power(
///     Watts::new(1.0),
///     Ratio::new(0.22)?,
///     Volts::new(0.8),
///     Volts::from_millivolts(20.0),
///     2.8,
/// );
/// assert!(pgb.get() > 1.04 && pgb.get() < 1.08);
/// # Ok::<(), pdn_units::UnitsError>(())
/// ```
pub fn guardband_power(
    p_nom: Watts,
    leakage_fraction: Ratio,
    v_nom: Volts,
    v_gb: Volts,
    delta: f64,
) -> Watts {
    p_nom * guardband_factor(leakage_fraction, v_nom, v_gb, delta)
}

/// The power-independent multiplier of Eq. 2:
/// `guardband_power(P, …) == P · guardband_factor(…)` exactly (the same
/// operations in the same order). Row-at-a-time evaluation hoists this
/// factor — the only `powf` of the guardband stage — out of per-point
/// loops, because along a lattice row only the nominal power varies while
/// `(FL, V_NOM, V_GB, δ)` stay fixed.
pub fn guardband_factor(leakage_fraction: Ratio, v_nom: Volts, v_gb: Volts, delta: f64) -> f64 {
    debug_assert!(v_nom.get() > 0.0, "nominal voltage must be positive");
    let scale = (v_nom + v_gb).get() / v_nom.get();
    let fl = leakage_fraction.get();
    fl * scale.powf(delta) + (1.0 - fl) * scale * scale
}

/// Fraction of a domain's dynamic power that switches regardless of
/// workload activity (clock tree, sequencing logic). Activity sensors see
/// the data-path share only, so measured power scales as
/// `cf + (1 − cf)·AR` with AR.
pub const DEFAULT_CLOCK_FRACTION: f64 = 0.35;

/// Power model for a single processor domain.
///
/// # Examples
///
/// ```
/// use pdn_proc::{client_soc, DomainKind};
/// use pdn_units::{ApplicationRatio, Celsius, Hertz, Watts};
///
/// let soc = client_soc(Watts::new(50.0));
/// let cores = &soc.domain(DomainKind::Core0).power;
/// let f = Hertz::from_gigahertz(4.0);
/// let v = soc.domain(DomainKind::Core0).vf.voltage_at(f);
/// let p = cores.nominal_power(f, v, ApplicationRatio::POWER_VIRUS, Celsius::new(100.0));
/// assert!(p.get() > 5.0, "a core at 4 GHz draws many watts: {p}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainPowerModel {
    /// Which domain this model describes.
    pub kind: DomainKind,
    /// Effective switched capacitance (farads) at AR = 1.
    pub ceff: f64,
    /// Leakage power at the reference voltage and temperature.
    pub leak_ref: Watts,
    /// Reference voltage for `leak_ref`.
    pub vref: Volts,
    /// Reference junction temperature for `leak_ref`.
    pub tref: Celsius,
    /// Leakage-vs-voltage polynomial exponent (δ, paper value 2.8).
    pub leak_voltage_exp: f64,
    /// Exponential leakage-vs-temperature coefficient (1/°C).
    pub leak_temp_coeff: f64,
    /// Leakage fraction used in the Eq. 2 guardband (Table 2: 45 % for
    /// graphics, 22 % for other domains).
    pub guardband_leakage_fraction: Ratio,
    /// Activity-independent share of dynamic power (clock distribution).
    pub clock_fraction: f64,
}

impl DomainPowerModel {
    /// Dynamic switching power `(cf + (1 − cf)·AR) · Ceff · f · V²`: the
    /// clock tree switches at full rate regardless of the workload's
    /// activity, so only the data-path share scales with AR.
    pub fn dynamic_power(
        &self,
        frequency: Hertz,
        voltage: Volts,
        activity: ApplicationRatio,
    ) -> Watts {
        let effective = self.clock_fraction + (1.0 - self.clock_fraction) * activity.get();
        Watts::new(effective * self.ceff * frequency.get() * voltage.get() * voltage.get())
    }

    /// Leakage power at `(voltage, temperature)`:
    /// `leak_ref · (V/Vref)^δ · e^(k·(T−Tref))`.
    pub fn leakage_power(&self, voltage: Volts, temperature: Celsius) -> Watts {
        let v_scale = (voltage.get() / self.vref.get()).powf(self.leak_voltage_exp);
        let t_scale = (self.leak_temp_coeff * (temperature - self.tref).get()).exp();
        self.leak_ref * (v_scale * t_scale)
    }

    /// Total nominal power of the powered domain at an operating point.
    pub fn nominal_power(
        &self,
        frequency: Hertz,
        voltage: Volts,
        activity: ApplicationRatio,
        temperature: Celsius,
    ) -> Watts {
        self.dynamic_power(frequency, voltage, activity) + self.leakage_power(voltage, temperature)
    }

    /// The leakage fraction realised at an operating point (as opposed to
    /// the design-time guardband fraction).
    pub fn leakage_fraction_at(
        &self,
        frequency: Hertz,
        voltage: Volts,
        activity: ApplicationRatio,
        temperature: Celsius,
    ) -> Ratio {
        let total = self.nominal_power(frequency, voltage, activity, temperature);
        if total.get() <= 0.0 {
            return Ratio::ZERO;
        }
        let leak = self.leakage_power(voltage, temperature);
        Ratio::new(leak.get() / total.get()).expect("fraction of positive powers is valid")
    }

    /// Applies the Eq. 2 guardband to a nominal power at this domain's
    /// design leakage fraction.
    pub fn with_guardband(&self, p_nom: Watts, v_nom: Volts, v_gb: Volts) -> Watts {
        guardband_power(p_nom, self.guardband_leakage_fraction, v_nom, v_gb, self.leak_voltage_exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DomainPowerModel {
        DomainPowerModel {
            kind: DomainKind::Core0,
            ceff: 2.4e-9,
            leak_ref: Watts::new(3.3),
            vref: Volts::new(1.15),
            tref: Celsius::new(100.0),
            leak_voltage_exp: LEAKAGE_VOLTAGE_EXPONENT,
            leak_temp_coeff: 0.02,
            guardband_leakage_fraction: Ratio::new(0.22).unwrap(),
            clock_fraction: DEFAULT_CLOCK_FRACTION,
        }
    }

    #[test]
    fn guardband_zero_is_identity() {
        let p = guardband_power(
            Watts::new(2.0),
            Ratio::new(0.22).unwrap(),
            Volts::new(0.8),
            Volts::ZERO,
            2.8,
        );
        assert!((p.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn guardband_grows_with_band_and_leakage_fraction() {
        let vnom = Volts::new(0.8);
        let small = guardband_power(
            Watts::new(1.0),
            Ratio::new(0.22).unwrap(),
            vnom,
            Volts::from_millivolts(10.0),
            2.8,
        );
        let large = guardband_power(
            Watts::new(1.0),
            Ratio::new(0.22).unwrap(),
            vnom,
            Volts::from_millivolts(30.0),
            2.8,
        );
        assert!(large > small);
        let leaky = guardband_power(
            Watts::new(1.0),
            Ratio::new(0.45).unwrap(),
            vnom,
            Volts::from_millivolts(30.0),
            2.8,
        );
        assert!(leaky > large, "δ > 2 means leakier domains pay more guardband");
    }

    #[test]
    fn guardband_matches_closed_form() {
        // Hand-computed: scale = 1.025; 0.22·1.025^2.8 + 0.78·1.025².
        let p = guardband_power(
            Watts::new(1.0),
            Ratio::new(0.22).unwrap(),
            Volts::new(0.8),
            Volts::from_millivolts(20.0),
            2.8,
        );
        let scale: f64 = 1.025;
        let expected = 0.22 * scale.powf(2.8) + 0.78 * scale * scale;
        assert!((p.get() - expected).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_scales_with_f_and_v_squared() {
        let m = model();
        let ar = ApplicationRatio::POWER_VIRUS;
        let base = m.dynamic_power(Hertz::from_gigahertz(1.0), Volts::new(0.6), ar);
        let double_f = m.dynamic_power(Hertz::from_gigahertz(2.0), Volts::new(0.6), ar);
        assert!((double_f.get() / base.get() - 2.0).abs() < 1e-9);
        let double_v = m.dynamic_power(Hertz::from_gigahertz(1.0), Volts::new(1.2), ar);
        assert!((double_v.get() / base.get() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn clock_tree_power_is_activity_independent() {
        let m = model();
        let f = Hertz::from_gigahertz(2.0);
        let v = Volts::new(0.7);
        let idle_ar = m.dynamic_power(f, v, ApplicationRatio::new(1e-6).unwrap());
        let virus = m.dynamic_power(f, v, ApplicationRatio::POWER_VIRUS);
        let floor = idle_ar.get() / virus.get();
        assert!((floor - m.clock_fraction).abs() < 1e-3, "clock floor {floor}");
    }

    #[test]
    fn leakage_scales_with_voltage_exponent() {
        let m = model();
        let t = Celsius::new(100.0);
        let at_half_v = m.leakage_power(Volts::new(0.575), t);
        let at_full_v = m.leakage_power(Volts::new(1.15), t);
        let ratio = at_full_v.get() / at_half_v.get();
        assert!((ratio - 2.0_f64.powf(2.8)).abs() < 1e-6);
    }

    #[test]
    fn leakage_scales_exponentially_with_temperature() {
        let m = model();
        let v = Volts::new(1.0);
        let cold = m.leakage_power(v, Celsius::new(50.0));
        let hot = m.leakage_power(v, Celsius::new(100.0));
        assert!((hot.get() / cold.get() - (0.02_f64 * 50.0).exp()).abs() < 1e-9);
    }

    #[test]
    fn leakage_fraction_rises_at_low_activity() {
        let m = model();
        let f = Hertz::from_gigahertz(1.0);
        let v = Volts::new(0.6);
        let t = Celsius::new(80.0);
        let busy = m.leakage_fraction_at(f, v, ApplicationRatio::new(0.9).unwrap(), t);
        let light = m.leakage_fraction_at(f, v, ApplicationRatio::new(0.2).unwrap(), t);
        assert!(light > busy);
    }

    #[test]
    fn nominal_power_is_dynamic_plus_leakage() {
        let m = model();
        let f = Hertz::from_gigahertz(2.0);
        let v = Volts::new(0.8);
        let ar = ApplicationRatio::new(0.5).unwrap();
        let t = Celsius::new(80.0);
        let total = m.nominal_power(f, v, ar, t);
        let parts = m.dynamic_power(f, v, ar) + m.leakage_power(v, t);
        assert!((total.get() - parts.get()).abs() < 1e-12);
    }
}
