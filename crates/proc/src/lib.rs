//! Client-processor substrate for the FlexWatts/PDNspot framework.
//!
//! Models the processor side of the power-delivery problem (§2.1, Table 1
//! of the FlexWatts paper): the six power domains of a modern client SoC
//! (two CPU cores, last-level cache, graphics, system agent, IO), their
//! voltage/frequency curves, their dynamic + leakage power (including the
//! Eq. 2 voltage-guardband scaling with the paper's δ = 2.8 leakage
//! exponent), the package C-states used by battery-life workloads and by
//! FlexWatts's mode-switching flow, and TDP/cTDP configuration.
//!
//! # Examples
//!
//! ```
//! use pdn_proc::{client_soc, DomainKind};
//! use pdn_units::Watts;
//!
//! let soc = client_soc(Watts::new(4.0));
//! let cores = soc.domain(DomainKind::Core0);
//! assert!(cores.fmax.gigahertz() <= 4.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cstate;
pub mod domain;
pub mod power;
pub mod soc;
pub mod tdp;
pub mod vf;

pub use cstate::{CStateLatency, PackageCState};
pub use domain::{DomainKind, DomainState, DomainTable};
pub use power::{guardband_factor, guardband_power, DomainPowerModel};
pub use soc::{
    broadwell_ult, client_soc, skylake_ult, ClientSocBuilder, DomainConfig, HoistedDomainPower,
    SocSpec,
};
pub use tdp::{ConfigurableTdp, PAPER_TDPS};
pub use vf::VfCurve;
