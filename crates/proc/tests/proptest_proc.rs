//! Property-based tests for the processor power model.

use pdn_proc::{client_soc, guardband_power, DomainKind, DomainState, PackageCState};
use pdn_units::{ApplicationRatio, Celsius, Hertz, Ratio, Volts, Watts};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Eq. 2 guardband factor is ≥ 1, monotone in the band, and
    /// monotone in the leakage fraction (since δ > 2).
    #[test]
    fn guardband_is_monotone(
        p in 0.01f64..40.0,
        v in 0.4f64..1.1,
        band_mv in 0.0f64..60.0,
        fl in 0.0f64..0.6,
    ) {
        let p_nom = Watts::new(p);
        let fl = Ratio::new(fl).unwrap();
        let gb = guardband_power(p_nom, fl, Volts::new(v), Volts::from_millivolts(band_mv), 2.8);
        prop_assert!(gb >= p_nom);
        let wider = guardband_power(
            p_nom,
            fl,
            Volts::new(v),
            Volts::from_millivolts(band_mv + 5.0),
            2.8,
        );
        prop_assert!(wider >= gb);
        let leakier = guardband_power(
            p_nom,
            Ratio::new((fl.get() + 0.2).min(1.0)).unwrap(),
            Volts::new(v),
            Volts::from_millivolts(band_mv),
            2.8,
        );
        prop_assert!(leakier.get() >= gb.get() - 1e-12);
    }

    /// Domain nominal power is monotone in frequency, activity, and
    /// temperature for every domain of the client SoC.
    #[test]
    fn nominal_power_is_monotone(
        tdp in 4.0f64..50.0,
        t in 0.0f64..0.95,
        ar in 0.1f64..0.95,
        tj in 50.0f64..100.0,
    ) {
        let soc = client_soc(Watts::new(tdp));
        for (kind, cfg) in soc.domains() {
            let span = cfg.fmax.get() - cfg.fmin.get();
            let f_lo = Hertz::new(cfg.fmin.get() + t * span);
            let f_hi = Hertz::new((f_lo.get() + 0.05 * span.max(1.0)).min(cfg.fmax.get()));
            let ar_lo = ApplicationRatio::new(ar).unwrap();
            let ar_hi = ApplicationRatio::new((ar + 0.05).min(1.0)).unwrap();
            let tj_lo = Celsius::new(tj);
            let tj_hi = Celsius::new(tj + 10.0);
            let p = |f: Hertz, a: ApplicationRatio, temp: Celsius| {
                cfg.nominal_power(&DomainState::active(f, a), temp)
            };
            prop_assert!(p(f_hi, ar_lo, tj_lo) >= p(f_lo, ar_lo, tj_lo), "{kind}: frequency");
            prop_assert!(p(f_lo, ar_hi, tj_lo) >= p(f_lo, ar_lo, tj_lo), "{kind}: activity");
            prop_assert!(p(f_lo, ar_lo, tj_hi) >= p(f_lo, ar_lo, tj_lo), "{kind}: temperature");
        }
    }

    /// The realised leakage fraction lies in (0, 1) and falls with
    /// activity.
    #[test]
    fn leakage_fraction_behaviour(
        tdp in 4.0f64..50.0,
        ar in 0.15f64..0.9,
    ) {
        let soc = client_soc(Watts::new(tdp));
        let cores = &soc.domain(DomainKind::Core0).power;
        let f = Hertz::from_gigahertz(2.0);
        let v = Volts::new(0.5);
        let tj = Celsius::new(80.0);
        let lo = cores.leakage_fraction_at(f, v, ApplicationRatio::new(ar).unwrap(), tj);
        let hi = cores.leakage_fraction_at(
            f,
            v,
            ApplicationRatio::new((ar + 0.1).min(1.0)).unwrap(),
            tj,
        );
        prop_assert!(lo.get() > 0.0 && lo.get() < 1.0);
        prop_assert!(hi <= lo);
    }

    /// C-state nominal power is invariant across SoCs (the §7.1
    /// "same nominal power at all TDPs" assumption) and strictly ordered.
    #[test]
    fn cstate_powers_are_tdp_invariant(idx in 0usize..6) {
        let state = PackageCState::ALL[idx];
        let p = state.nominal_power();
        // The table is static: identical regardless of any SoC instance.
        let _ = client_soc(Watts::new(25.0));
        prop_assert_eq!(state.nominal_power(), p);
        prop_assert!(p.get() > 0.0 && p.get() <= 2.5);
    }

    /// Voltage from the V/f curve is monotone and inside Table 1's band
    /// for every domain.
    #[test]
    fn vf_curves_are_sane(tdp in 4.0f64..50.0, t in 0.0f64..1.0) {
        let soc = client_soc(Watts::new(tdp));
        for (kind, cfg) in soc.domains() {
            let span = cfg.fmax.get() - cfg.fmin.get();
            let f = Hertz::new(cfg.fmin.get() + t * span);
            let v = cfg.vf.voltage_at(f);
            prop_assert!(
                (0.35..=1.2).contains(&v.get()),
                "{kind}: {v} at {:.2} GHz",
                f.gigahertz()
            );
            let v2 = cfg.vf.voltage_at(Hertz::new((f.get() + 0.05 * span).min(cfg.fmax.get())));
            prop_assert!(v2 >= v, "{kind}: V/f must be non-decreasing");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `DomainTable` is observationally equivalent to a
    /// `BTreeMap<DomainKind, _>`: same iteration order, same values, and
    /// a bit-identical left-to-right fold.
    #[test]
    fn domain_table_matches_btreemap(
        vals in proptest::collection::vec(-1e3f64..1e3, 6),
        set_idx in 0usize..6,
        set_val in -1e3f64..1e3,
    ) {
        use std::collections::BTreeMap;

        let mut table = pdn_proc::DomainTable::from_fn(|k| vals[k.index()]);
        let mut map: BTreeMap<DomainKind, f64> =
            DomainKind::ALL.iter().map(|&k| (k, vals[k.index()])).collect();

        // Mutation through either interface stays in lockstep.
        let kind = DomainKind::ALL[set_idx];
        table.set(kind, set_val);
        map.insert(kind, set_val);

        prop_assert_eq!(table.iter().count(), map.len());
        for ((tk, tv), (mk, mv)) in table.iter().zip(map.iter()) {
            prop_assert_eq!(tk, *mk);
            prop_assert_eq!(tv.to_bits(), mv.to_bits());
        }
        prop_assert_eq!(*table.get(kind), set_val);

        // The accumulation order is identical, so a sequential sum —
        // the shape of every power fold in the scenario hot path — is
        // bit-identical, not merely approximately equal.
        let table_sum = table.values().fold(0.0f64, |acc, &v| acc + v);
        let map_sum = map.values().fold(0.0f64, |acc, &v| acc + v);
        prop_assert_eq!(table_sum.to_bits(), map_sum.to_bits());
    }
}
